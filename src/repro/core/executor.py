"""Execution of vertical bulk-delete plans.

``execute_plan`` walks the steps of a :class:`BulkDeletePlan` and wires
the ``bd`` primitives together exactly like the paper's Figure 3/4/5
DAGs: the driving index turns sorted delete keys into a RID list, the
RID list (sorted, hashed, or partitioned) drives the base table and the
remaining indexes, and each structure is touched once, vertically.

``bulk_delete`` is the one-call public entry point: it plans (or takes
a caller-supplied plan) and executes, falling back to the traditional
executor when the planner decides record-at-a-time is cheaper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    Callable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.catalog.catalog import IndexInfo, TableInfo
from repro.catalog.database import Database
from repro.core.bulk_ops import (
    BdResult,
    bd_heap_hash_probe,
    bd_heap_sorted_rids,
    bd_index_hash_probe,
    bd_index_partitioned,
    bd_index_sort_merge,
)
from repro.core.planner import choose_plan
from repro.core.plans import (
    BdMethod,
    BdPredicate,
    BulkDeletePlan,
    StepPlan,
)
from repro.catalog.statistics import collect_table_statistics
from repro.errors import PlanningError, PlanValidationError
from repro.obs.trace import maybe_span
from repro.parallel import DEDICATED, LaneScheduler, LaneTask
from repro.query.hashtable import BoundedHashSet, HashTableOverflowError
from repro.query.sort import ExternalSorter
from repro.storage.disk import DiskStats
from repro.storage.rid import RID

Row = Tuple[RID, Tuple[object, ...]]


@dataclass
class BulkDeleteOptions:
    """Execution knobs (reorganization & hygiene)."""

    #: Compact/merge leaf pages during the sweep (paper §2.3).
    compact_leaves: bool = False
    #: Use the on-the-fly base-node inner update ([26]) instead of the
    #: layer-by-layer rebuild.
    base_node_reorg: bool = False
    #: Free base-table pages that the delete emptied completely.
    reclaim_heap_pages: bool = True
    #: Force all dirty pages to disk at the end (charges the writes).
    flush_at_end: bool = True
    #: Concurrent I/O lanes for the independent plan branches after the
    #: RID-list barrier.  ``1`` (the default) is the strictly serial
    #: paper testbed — it takes the exact serial code path, so its
    #: simulated times are bit-identical to pre-parallelism builds.
    lanes: int = 1
    #: ``"dedicated"`` models one disk per lane (near-linear speedup);
    #: ``"shared"`` models lanes interleaving on one device, which
    #: loses every sequentiality discount and serializes the requests.
    contention: str = DEDICATED
    #: Seed for the scheduler's lane tie-breaks; the same seed replays
    #: the same interleaving (crash sweeps depend on this).
    lane_seed: int = 0
    #: Media recovery layer (:class:`repro.media.MediaRecovery`) to
    #: attach to the buffer pool for the statement's duration: pool
    #: misses then retry transient read faults with backoff and repair
    #: checksum mismatches from full-page images instead of failing.
    media: Optional[object] = None


@dataclass
class BulkDeleteResult:
    """What one bulk delete did and what it cost (simulated)."""

    plan: BulkDeletePlan
    records_deleted: int = 0
    step_results: List[BdResult] = field(default_factory=list)
    elapsed_ms: float = 0.0
    io: Optional[DiskStats] = None
    heap_pages_reclaimed: int = 0
    #: Root :class:`repro.obs.trace.Span` of the execution, when an
    #: observer was attached to the database (``None`` otherwise).
    trace: Optional[object] = None
    #: Per-region :class:`repro.parallel.RegionReport` objects when the
    #: plan ran with ``lanes > 1`` (empty for serial execution).
    parallel_regions: List[object] = field(default_factory=list)

    @property
    def elapsed_seconds(self) -> float:
        return self.elapsed_ms / 1000.0

    @property
    def elapsed_minutes(self) -> float:
        return self.elapsed_ms / 60000.0

    def summary(self) -> str:
        lines = [
            f"deleted {self.records_deleted} records in "
            f"{self.elapsed_seconds:.2f}s (simulated)"
        ]
        for step in self.step_results:
            lines.append(
                f"  {step.structure}: -{step.deleted_count} entries, "
                f"{step.pages_visited} pages visited, "
                f"{step.pages_freed} freed"
            )
        if self.io is not None:
            lines.append(
                f"  io: {self.io.reads} reads / {self.io.writes} writes "
                f"({self.io.random_ios} random)"
            )
        return "\n".join(lines)


def validate_plan(db: Database, plan: BulkDeletePlan) -> None:
    """Reject ``plan`` if the static plan linter finds ERROR findings.

    Runs :func:`repro.analysis.plan_lint.lint_plan` with full catalog
    context; WARNING findings pass (EXPLAIN surfaces them), ERROR
    findings raise :class:`PlanValidationError` before any simulated
    I/O is charged.
    """
    from repro.analysis.findings import errors as error_findings
    from repro.analysis.plan_lint import lint_plan

    broken = error_findings(lint_plan(plan, db))
    if broken:
        detail = "; ".join(
            f"{f.rule_id} @ {f.node}: {f.message}" for f in broken
        )
        raise PlanValidationError(
            f"plan for {plan.table_name} violates "
            f"{len(broken)} invariant(s): {detail}",
            findings=broken,
        )


def execute_plan(
    db: Database,
    plan: BulkDeletePlan,
    keys: Sequence[int],
    options: Optional[BulkDeleteOptions] = None,
    validate: bool = True,
) -> BulkDeleteResult:
    """Run a vertical plan.  ``keys`` is the delete list (column values).

    With ``validate=True`` (the default) the plan is first checked
    against the paper's structural invariants by the static plan
    linter; an invalid plan raises :class:`PlanValidationError`
    *before* the executor charges any simulated I/O for it.

    ``options.media`` attaches a media recovery layer to the buffer
    pool for the statement's duration (detached again even when the
    statement fails).
    """
    options = options or BulkDeleteOptions()
    if options.media is None:
        return _execute(db, plan, keys, options, validate)
    db.pool.media = options.media
    try:
        return _execute(db, plan, keys, options, validate)
    finally:
        db.pool.media = None


def _execute(
    db: Database,
    plan: BulkDeletePlan,
    keys: Sequence[int],
    options: BulkDeleteOptions,
    validate: bool,
) -> BulkDeleteResult:
    table = db.table(plan.table_name)
    if plan.table_step().method is BdMethod.NESTED_LOOPS:
        raise PlanningError(
            "horizontal plans are executed by repro.core.traditional; "
            "use bulk_delete() for automatic dispatch"
        )
    if validate:
        validate_plan(db, plan)
    start_ms = db.clock.now_ms
    io_before = db.disk.stats.snapshot()
    result = BulkDeleteResult(plan=plan)
    obs = db.obs

    with maybe_span(
        obs,
        f"bulk-delete {plan.table_name}",
        kind="delete",
        target=plan.table_name,
        n_keys=len(keys),
    ) as root:
        # --- delete keys, sorted once, drive the first bd -------------
        with maybe_span(
            obs, "sort(delete keys)", kind="sort", target="D"
        ) as sort_span:
            sorter = ExternalSorter(db.disk, db.memory_bytes, width=1)
            sorted_keys = [k for (k,) in sorter.sort((k,) for k in keys)]
            sort_span.set(
                tuples=sorter.stats.input_tuples,
                runs=sorter.stats.runs,
                spilled=sorter.stats.spilled,
            )

        rid_list, driving_result = _produce_rid_list(
            db, table, plan, sorted_keys, options
        )
        if driving_result is not None:
            result.step_results.append(driving_result)

        # --- RID ordering for the base-table sweep --------------------
        if plan.sort_rid_list:
            with maybe_span(
                obs, "sort(RID)", kind="sort", target=plan.table_name
            ) as sort_span:
                rid_sorter = ExternalSorter(db.disk, db.memory_bytes, width=1)
                rid_list = [
                    r for (r,) in rid_sorter.sort((r,) for r in rid_list)
                ]
                sort_span.set(
                    tuples=rid_sorter.stats.input_tuples,
                    runs=rid_sorter.stats.runs,
                    spilled=rid_sorter.stats.spilled,
                )

        if options.lanes == 1:
            rows = _serial_branches(
                db, table, plan, rid_list, options, result
            )
        else:
            rows = _execute_parallel(
                db, table, plan, rid_list, options, result
            )

        if options.reclaim_heap_pages:
            with maybe_span(
                obs,
                f"reclaim({plan.table_name})",
                kind="maintenance",
                target=plan.table_name,
            ) as span:
                result.heap_pages_reclaimed = (
                    table.heap.reclaim_empty_pages()
                )
                span.set(pages_reclaimed=result.heap_pages_reclaimed)
        if options.flush_at_end:
            with maybe_span(obs, "flush", kind="flush"):
                db.flush()
        root.set(records_deleted=result.records_deleted)
    result.elapsed_ms = db.clock.now_ms - start_ms
    result.io = db.disk.stats.delta_since(io_before)
    result.trace = getattr(root, "span", None)
    return result


def _serial_branches(
    db: Database,
    table: TableInfo,
    plan: BulkDeletePlan,
    rid_list: List[int],
    options: BulkDeleteOptions,
    result: BulkDeleteResult,
) -> List[Row]:
    """Strictly serial single-disk execution of every plan branch after
    the RID-list barrier — the paper's testbed.  This is the original
    executor body, untouched, so its simulated times stay bit-identical
    across builds.
    """
    obs = db.obs

    # --- unique indexes before the table (RID probes) ---------
    for step in plan.steps_before_table():
        if step.target == plan.driving_index:
            continue
        index = table.index(step.target)
        with maybe_span(
            obs,
            f"bd[hash/rid] {step.target}",
            kind="bd",
            target=step.target,
        ) as span:
            rid_set = BoundedHashSet(db.memory_bytes).build(
                rid_list
            )
            step_result = bd_index_hash_probe(
                index.tree, rid_set, db.disk,
                compact=options.compact_leaves,
            )
            _note_bd(span, step_result)
        result.step_results.append(step_result)

    # --- the base table ----------------------------------------
    table_step = plan.table_step()
    with maybe_span(
        obs,
        f"bd[{table_step.method.value}/rid] {plan.table_name}",
        kind="bd",
        target=plan.table_name,
    ) as span:
        if table_step.method is BdMethod.HASH:
            rid_set = BoundedHashSet(db.memory_bytes).build(
                rid_list
            )
            rows, table_result = bd_heap_hash_probe(
                table, rid_set, db.disk
            )
        else:
            rids = [RID.unpack(r) for r in rid_list]
            rows, table_result = bd_heap_sorted_rids(
                table, rids, db.disk, compact=options.compact_leaves
            )
        _note_bd(span, table_result)
        span.set(records_deleted=len(rows))
    result.step_results.append(table_result)
    result.records_deleted = len(rows)

    # --- remaining indexes, fed by projections of deleted rows
    for step in plan.steps_after_table():
        index = table.index(step.target)
        with maybe_span(
            obs,
            f"bd[{step.method.value}/{step.predicate.value}] "
            f"{step.target}",
            kind="bd",
            target=step.target,
        ) as span:
            step_result = _run_index_step(
                db, table, index, step, rows, rid_list, options
            )
            _note_bd(span, step_result)
        result.step_results.append(step_result)

    # --- non-B-tree indexes: "updated in the traditional way"
    for index in table.hash_indexes():
        with maybe_span(
            obs,
            f"hash-index {index.name}",
            kind="bd",
            target=index.name,
        ) as span:
            hash_result = BdResult(structure=index.name)
            for rid, values in rows:
                key = index.key_for(values, table.schema)
                if index.hash_index.delete(key, rid.pack()):
                    hash_result.deleted.append((key, rid.pack()))
            db.disk.charge_cpu_records(len(rows))
            _note_bd(span, hash_result)
        result.step_results.append(hash_result)
    return rows


def execute_fragment(
    db: Database,
    plan: BulkDeletePlan,
    keys: Sequence[int],
    options: Optional[BulkDeleteOptions] = None,
    validate: bool = True,
) -> BulkDeleteResult:
    """Serial-only twin of :func:`execute_plan` for lane tasks.

    Sharded execution (:mod:`repro.shard.executor`) runs whole
    shard-local statements *as* lane tasks.  A task that could open a
    nested parallel region would re-enter the lane scheduler — and
    reach its clock repositioning and the coordinator's catalog
    mutations — mid-region, so this entry point structurally cannot:
    it rejects ``lanes != 1`` and never calls ``_execute_parallel``,
    which is what lets the static lane-safety analysis vouch for the
    fragment tasks.  The execution sequence is the exact serial path
    of :func:`execute_plan` (same helpers, same order, bit-identical
    simulated times).
    """
    options = options or BulkDeleteOptions()
    if options.lanes != 1:
        raise PlanningError(
            "execute_fragment is the serial-only executor; fragment "
            f"options request lanes={options.lanes}"
        )
    if options.media is None:
        return _execute_fragment(db, plan, keys, options, validate)
    db.pool.media = options.media
    try:
        return _execute_fragment(db, plan, keys, options, validate)
    finally:
        db.pool.media = None


def _execute_fragment(
    db: Database,
    plan: BulkDeletePlan,
    keys: Sequence[int],
    options: BulkDeleteOptions,
    validate: bool,
) -> BulkDeleteResult:
    # Twin of _execute with the parallel branch cut out; keep the two
    # shells in step.
    table = db.table(plan.table_name)
    if plan.table_step().method is BdMethod.NESTED_LOOPS:
        raise PlanningError(
            "horizontal plans are executed by repro.core.traditional; "
            "use bulk_delete() for automatic dispatch"
        )
    if validate:
        validate_plan(db, plan)
    start_ms = db.clock.now_ms
    io_before = db.disk.stats.snapshot()
    result = BulkDeleteResult(plan=plan)
    obs = db.obs

    with maybe_span(
        obs,
        f"bulk-delete {plan.table_name}",
        kind="delete",
        target=plan.table_name,
        n_keys=len(keys),
    ) as root:
        with maybe_span(
            obs, "sort(delete keys)", kind="sort", target="D"
        ) as sort_span:
            sorter = ExternalSorter(db.disk, db.memory_bytes, width=1)
            sorted_keys = [k for (k,) in sorter.sort((k,) for k in keys)]
            sort_span.set(
                tuples=sorter.stats.input_tuples,
                runs=sorter.stats.runs,
                spilled=sorter.stats.spilled,
            )

        rid_list, driving_result = _produce_rid_list(
            db, table, plan, sorted_keys, options
        )
        if driving_result is not None:
            result.step_results.append(driving_result)

        if plan.sort_rid_list:
            with maybe_span(
                obs, "sort(RID)", kind="sort", target=plan.table_name
            ) as sort_span:
                rid_sorter = ExternalSorter(db.disk, db.memory_bytes, width=1)
                rid_list = [
                    r for (r,) in rid_sorter.sort((r,) for r in rid_list)
                ]
                sort_span.set(
                    tuples=rid_sorter.stats.input_tuples,
                    runs=rid_sorter.stats.runs,
                    spilled=rid_sorter.stats.spilled,
                )

        _serial_branches(db, table, plan, rid_list, options, result)

        if options.reclaim_heap_pages:
            with maybe_span(
                obs,
                f"reclaim({plan.table_name})",
                kind="maintenance",
                target=plan.table_name,
            ) as span:
                result.heap_pages_reclaimed = (
                    table.heap.reclaim_empty_pages()
                )
                span.set(pages_reclaimed=result.heap_pages_reclaimed)
        if options.flush_at_end:
            with maybe_span(obs, "flush", kind="flush"):
                db.flush()
        root.set(records_deleted=result.records_deleted)
    result.elapsed_ms = db.clock.now_ms - start_ms
    result.io = db.disk.stats.delta_since(io_before)
    result.trace = getattr(root, "span", None)
    return result


def _execute_parallel(
    db: Database,
    table: TableInfo,
    plan: BulkDeletePlan,
    rid_list: List[int],
    options: BulkDeleteOptions,
    result: BulkDeleteResult,
) -> List[Row]:
    """Run the post-barrier plan branches on ``options.lanes`` lanes.

    The RID list is the barrier: everything after it is a set of
    independent branches (one structure each), executed here in two
    regions — the RID consumers (unique-index probes and the base-table
    sweep), then the row consumers (remaining index sweeps and hash
    index maintenance).  One RID hash set is built once and pinned
    across lanes; branches never share a mutable structure.

    Returns the deleted rows.  Region reports (makespan, per-lane
    accounting) are appended to ``result.parallel_regions``;
    ``result.step_results`` ends up in the same order as the serial
    executor produces.
    """
    obs = db.obs
    scheduler = LaneScheduler(
        db.disk, options.lanes, options.contention, seed=options.lane_seed
    )
    stats = collect_table_statistics(table)

    def leaf_pages(name: str) -> float:
        index_stats = stats.indexes.get(name)
        return float(index_stats.leaf_pages) if index_stats else 0.0

    shared_set = _build_shared_rid_set(db, plan, rid_list)

    def rid_consumer_set() -> BoundedHashSet:
        # Pre-table probes and the hash table sweep must not silently
        # degrade: like the serial path, an unbuildable set raises.
        if shared_set is not None:
            return shared_set
        return BoundedHashSet(db.memory_bytes).build(rid_list)

    # --- region 1: RID consumers (unique indexes + base table) --------
    tasks: List[LaneTask] = []
    for step in plan.steps_before_table():
        if step.target == plan.driving_index:
            continue
        tasks.append(
            LaneTask(
                name=f"bd[hash/rid] {step.target}",
                run=_make_probe_task(db, table, step, rid_consumer_set,
                                     options),
                estimated_ms=leaf_pages(step.target),
                target=step.target,
            )
        )
    table_step = plan.table_step()
    tasks.append(
        LaneTask(
            name=f"bd[{table_step.method.value}/rid] {plan.table_name}",
            run=_make_table_task(db, table, plan, rid_list,
                                 rid_consumer_set, options),
            estimated_ms=float(stats.heap_pages),
            target=plan.table_name,
        )
    )
    report = scheduler.run_region("pre-table", tasks, obs=obs)
    result.parallel_regions.append(report)
    outcomes = report.results()
    result.step_results.extend(outcomes[:-1])
    rows, table_result = outcomes[-1]
    result.step_results.append(table_result)
    result.records_deleted = len(rows)

    # --- region 2: row consumers (remaining indexes, hash indexes) ----
    tasks = []
    for step in plan.steps_after_table():
        tasks.append(
            LaneTask(
                name=(
                    f"bd[{step.method.value}/{step.predicate.value}] "
                    f"{step.target}"
                ),
                run=_make_index_task(db, table, step, rows, rid_list,
                                     shared_set, options),
                estimated_ms=leaf_pages(step.target),
                target=step.target,
            )
        )
    for index in table.hash_indexes():
        tasks.append(
            LaneTask(
                name=f"hash-index {index.name}",
                run=_make_hash_index_task(db, table, index, rows),
                estimated_ms=0.0,
                target=index.name,
            )
        )
    if tasks:
        report = scheduler.run_region("index-maintenance", tasks, obs=obs)
        result.parallel_regions.append(report)
        result.step_results.extend(report.results())
    return rows


def _build_shared_rid_set(
    db: Database, plan: BulkDeletePlan, rid_list: Sequence[int]
) -> Optional[BoundedHashSet]:
    """Build the one RID hash set the lanes share, if any step hashes.

    Building is pure in-memory work (no simulated I/O), so sharing does
    not change costs — it models pinning one structure instead of one
    copy per branch.  On overflow the set is ``None`` and each hash
    step falls back exactly as the serial executor would (probes raise,
    post-table steps partition).
    """
    needs_hash = (
        any(
            step.target != plan.driving_index
            for step in plan.steps_before_table()
        )
        or plan.table_step().method is BdMethod.HASH
        or any(
            step.method is BdMethod.HASH
            for step in plan.steps_after_table()
        )
    )
    if not needs_hash:
        return None
    with maybe_span(
        db.obs,
        "build(RID-hash)",
        kind="build",
        target=plan.table_name,
        shared=True,
    ) as span:
        try:
            shared = BoundedHashSet(db.memory_bytes).build(rid_list)
        except HashTableOverflowError:
            span.set(overflow=True)
            return None
        span.set(entries=len(rid_list))
    return shared


def _make_probe_task(
    db: Database,
    table: TableInfo,
    step: StepPlan,
    rid_consumer_set: "Callable[[], BoundedHashSet]",
    options: BulkDeleteOptions,
) -> "Callable[[], BdResult]":
    index = table.index(step.target)

    def run() -> BdResult:
        with maybe_span(
            db.obs,
            f"bd[hash/rid] {step.target}",
            kind="bd",
            target=step.target,
        ) as span:
            step_result = bd_index_hash_probe(
                index.tree, rid_consumer_set(), db.disk,
                compact=options.compact_leaves,
            )
            _note_bd(span, step_result)
        return step_result

    return run


def _make_table_task(
    db: Database,
    table: TableInfo,
    plan: BulkDeletePlan,
    rid_list: Sequence[int],
    rid_consumer_set: "Callable[[], BoundedHashSet]",
    options: BulkDeleteOptions,
) -> "Callable[[], Tuple[List[Row], BdResult]]":
    table_step = plan.table_step()

    def run() -> Tuple[List[Row], BdResult]:
        with maybe_span(
            db.obs,
            f"bd[{table_step.method.value}/rid] {plan.table_name}",
            kind="bd",
            target=plan.table_name,
        ) as span:
            if table_step.method is BdMethod.HASH:
                rows, table_result = bd_heap_hash_probe(
                    table, rid_consumer_set(), db.disk
                )
            else:
                rids = [RID.unpack(r) for r in rid_list]
                rows, table_result = bd_heap_sorted_rids(
                    table, rids, db.disk, compact=options.compact_leaves
                )
            _note_bd(span, table_result)
            span.set(records_deleted=len(rows))
        return rows, table_result

    return run


def _make_index_task(
    db: Database,
    table: TableInfo,
    step: StepPlan,
    rows: Sequence[Row],
    rid_list: Sequence[int],
    shared_set: Optional[BoundedHashSet],
    options: BulkDeleteOptions,
) -> "Callable[[], BdResult]":
    index = table.index(step.target)

    def run() -> BdResult:
        with maybe_span(
            db.obs,
            f"bd[{step.method.value}/{step.predicate.value}] "
            f"{step.target}",
            kind="bd",
            target=step.target,
        ) as span:
            step_result = _run_index_step(
                db, table, index, step, rows, rid_list, options,
                rid_set=shared_set,
            )
            _note_bd(span, step_result)
        return step_result

    return run


def _make_hash_index_task(
    db: Database,
    table: TableInfo,
    index: IndexInfo,
    rows: Sequence[Row],
) -> "Callable[[], BdResult]":
    def run() -> BdResult:
        with maybe_span(
            db.obs,
            f"hash-index {index.name}",
            kind="bd",
            target=index.name,
        ) as span:
            hash_result = BdResult(structure=index.name)
            for rid, values in rows:
                key = index.key_for(values, table.schema)
                if index.hash_index.delete(key, rid.pack()):
                    hash_result.deleted.append((key, rid.pack()))
            db.disk.charge_cpu_records(len(rows))
            _note_bd(span, hash_result)
        return hash_result

    return run


def _note_bd(span: object, bd_result: BdResult) -> None:
    """Copy one ``bd`` primitive's own counters onto its span."""
    span.set(  # type: ignore[attr-defined]
        entries_deleted=bd_result.deleted_count,
        pages_visited=bd_result.pages_visited,
        pages_freed=bd_result.pages_freed,
        partitions=bd_result.partitions,
    )


def _produce_rid_list(
    db: Database,
    table: TableInfo,
    plan: BulkDeletePlan,
    sorted_keys: Sequence[int],
    options: BulkDeleteOptions,
) -> Tuple[List[int], Optional[BdResult]]:
    """First stage: turn delete keys into packed RIDs.

    With a driving index this is the first ``bd`` (sort/merge on the
    index's own key); without one, a sequential table scan finds the
    victims (their RIDs arrive in physical order for free).
    """
    obs = db.obs
    if plan.driving_index is not None:
        index = table.index(plan.driving_index)
        pairs = [(k, 0) for k in sorted_keys]
        with maybe_span(
            obs,
            f"bd[sort-merge/key] {plan.driving_index}",
            kind="bd",
            target=plan.driving_index,
            driving=True,
        ) as span:
            if options.base_node_reorg:
                from repro.core.reorg import sweep_with_base_node_reorg

                bd_result = sweep_with_base_node_reorg(
                    index.tree, pairs, db.disk, match_rid=False
                )
            else:
                bd_result = bd_index_sort_merge(
                    index.tree,
                    pairs,
                    db.disk,
                    match_rid=False,
                    compact=options.compact_leaves,
                )
            _note_bd(span, bd_result)
        return [rid for _, rid in bd_result.deleted], bd_result
    key_set: Set[int] = set(sorted_keys)
    column_idx = table.schema.column_index(plan.column)
    rid_list: List[int] = []
    scan_result = BdResult(structure=f"{table.name} (scan)")
    with maybe_span(
        obs,
        f"scan({table.name})",
        kind="scan",
        target=table.name,
        emits="RID list",
    ) as span:
        for page_id, records in table.heap.scan_pages():
            scan_result.pages_visited += 1
            db.disk.charge_cpu_records(len(records))
            for slot, payload in records:
                values = table.serializer.unpack(payload)
                if values[column_idx] in key_set:
                    rid_list.append(RID(page_id, slot).pack())
        _note_bd(span, scan_result)
    return rid_list, scan_result


def _run_index_step(
    db: Database,
    table: TableInfo,
    index: IndexInfo,
    step: StepPlan,
    rows: Sequence[Row],
    rid_list: Sequence[int],
    options: BulkDeleteOptions,
    rid_set: Optional[BoundedHashSet] = None,
) -> BdResult:
    """Apply one post-table index step with its planned method.

    ``rid_set`` lets the parallel executor pin one shared RID hash set
    across lanes; when ``None`` (the serial path) the step builds its
    own, falling back to partitioning on overflow.
    """
    if step.method is BdMethod.HASH:
        if rid_set is None:
            try:
                rid_set = BoundedHashSet(db.memory_bytes).build(rid_list)
            except HashTableOverflowError:
                pairs = _project_pairs(table, index, rows)
                return bd_index_partitioned(
                    index.tree,
                    pairs,
                    db.memory_bytes,
                    db.disk,
                    compact=options.compact_leaves,
                )
        return bd_index_hash_probe(
            index.tree, rid_set, db.disk, compact=options.compact_leaves
        )
    if step.method is BdMethod.PARTITIONED_HASH:
        pairs = _project_pairs(table, index, rows)
        return bd_index_partitioned(
            index.tree,
            pairs,
            db.memory_bytes,
            db.disk,
            compact=options.compact_leaves,
        )
    # sort/merge: project (key, rid), sort, sweep.
    pairs = _project_pairs(table, index, rows)
    clustered_feed = index.clustered
    if not clustered_feed:
        with maybe_span(
            db.obs, f"sort(key,RID) {index.name}", kind="sort",
            target=index.name,
        ) as span:
            sorter = ExternalSorter(db.disk, db.memory_bytes, width=2)
            pairs = list(sorter.sort(pairs))
            span.set(
                tuples=sorter.stats.input_tuples,
                runs=sorter.stats.runs,
                spilled=sorter.stats.spilled,
            )
    else:
        pairs = sorted(pairs)  # already nearly ordered; cheap
    if options.base_node_reorg:
        from repro.core.reorg import sweep_with_base_node_reorg

        return sweep_with_base_node_reorg(
            index.tree, pairs, db.disk, match_rid=True
        )
    return bd_index_sort_merge(
        index.tree,
        pairs,
        db.disk,
        match_rid=True,
        compact=options.compact_leaves,
    )


def _project_pairs(
    table: TableInfo, index: IndexInfo, rows: Sequence[Row]
) -> List[Tuple[int, int]]:
    """Project ``(index key, packed RID)`` from the deleted rows.

    Compound indexes pack their column tuple into one key here, after
    which they are handled exactly like single-column indexes.
    """
    return [
        (index.key_for(values, table.schema), rid.pack())
        for rid, values in rows
    ]


def bulk_delete(
    db: Database,
    table_name: str,
    column: str,
    keys: Sequence[int],
    plan: Optional[BulkDeletePlan] = None,
    options: Optional[BulkDeleteOptions] = None,
    prefer_method: Optional[BdMethod] = None,
    force_vertical: bool = True,
    validate: bool = True,
) -> BulkDeleteResult:
    """Plan and execute ``DELETE FROM table WHERE column IN keys``.

    With ``force_vertical=False`` the planner may choose the
    traditional horizontal execution when the delete list is small; the
    result object is shaped the same either way.  ``validate`` runs the
    static plan linter before execution (mainly a guard for
    caller-supplied plans; planner output lints clean by construction).

    An LSM-backed table dispatches to
    :func:`repro.lsm.engine.lsm_bulk_delete` (tombstones + FADE
    compactions) and returns its :class:`~repro.lsm.engine
    .LsmDeleteResult` instead.
    """
    table = db.table(table_name)
    if table.lsm is not None:
        from repro.lsm.engine import lsm_bulk_delete
        from repro.lsm.planning import LsmDeletePlan

        lsm_plan = plan if isinstance(plan, LsmDeletePlan) else None
        return lsm_bulk_delete(  # type: ignore[return-value]
            db, table_name, column, keys, plan=lsm_plan
        )
    if plan is None:
        opts = options or BulkDeleteOptions()
        plan = choose_plan(
            db,
            table_name,
            column,
            len(keys),
            prefer_method=prefer_method,
            force_vertical=force_vertical,
            lanes=opts.lanes,
            contention=opts.contention,
        )
    if plan.table_step().method is BdMethod.NESTED_LOOPS:
        from repro.core.traditional import traditional_delete

        trad = traditional_delete(db, table_name, column, keys, presort=True)
        return BulkDeleteResult(
            plan=plan,
            records_deleted=trad.records_deleted,
            step_results=[],
            elapsed_ms=trad.elapsed_ms,
            io=trad.io,
            trace=trad.trace,
        )
    return execute_plan(db, plan, keys, options, validate=validate)

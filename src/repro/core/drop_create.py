"""The ``drop & create`` baseline from the paper's introduction.

Drop every secondary index, run the DELETE with only the driving index
maintained, then re-create the dropped indexes from scratch.  The paper
found this beats the traditional approach on a commercial system once
more than ~5 % of the table is deleted, but in its (and our) prototype
index creation is expensive enough that it loses even to the
traditional plans (Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.catalog.database import Database
from repro.core.traditional import TraditionalResult, traditional_delete
from repro.errors import PlanningError
from repro.storage.disk import DiskStats


@dataclass
class DroppedIndexSpec:
    """Everything needed to re-create an index after the delete."""

    name: str
    column: str
    unique: bool
    clustered: bool
    max_leaf_entries: Optional[int] = None
    max_inner_entries: Optional[int] = None
    kind: str = "btree"
    bucket_count: Optional[int] = None


@dataclass
class DropCreateResult:
    """Timing breakdown of the drop & create execution."""

    table_name: str
    records_deleted: int
    elapsed_ms: float
    delete_ms: float
    recreate_ms: float
    indexes_recreated: List[str] = field(default_factory=list)
    io: Optional[DiskStats] = None

    @property
    def elapsed_seconds(self) -> float:
        return self.elapsed_ms / 1000.0

    @property
    def elapsed_minutes(self) -> float:
        return self.elapsed_ms / 60000.0


def drop_create_delete(
    db: Database,
    table_name: str,
    column: str,
    keys: Sequence[int],
    presort: bool = True,
    create_method: str = "insert",
) -> DropCreateResult:
    """Execute the DELETE with the drop-indexes-first strategy.

    The index on the delete column is kept — it is needed to find the
    victims — every other index is dropped up front and re-created
    afterwards.  ``create_method`` selects the rebuild path:
    ``"insert"`` (default) re-inserts entry-at-a-time like the paper's
    prototype, ``"bulk"`` uses the efficient scan/sort/bulk-load path
    of a commercial system (Figure 1's flavour).
    """
    table = db.table(table_name)
    if not table.indexes_on(column):
        raise PlanningError(
            f"drop & create needs an index on {table_name}.{column}"
        )
    start_ms = db.clock.now_ms
    io_before = db.disk.stats.snapshot()
    to_recreate: List[DroppedIndexSpec] = []
    for index in list(table.indexes.values()):
        if index.column == column and index.is_btree:
            continue
        if index.is_btree:
            spec = DroppedIndexSpec(
                name=index.name,
                column=index.column,
                unique=index.unique,
                clustered=index.clustered,
                max_leaf_entries=index.tree.leaf_capacity,
                max_inner_entries=index.tree.inner_capacity,
            )
        else:
            spec = DroppedIndexSpec(
                name=index.name,
                column=index.column,
                unique=index.unique,
                clustered=False,
                kind="hash",
                bucket_count=index.hash_index.bucket_count,
            )
        to_recreate.append(spec)
        db.drop_index(table_name, index.name)
    delete_result: TraditionalResult = traditional_delete(
        db, table_name, column, keys, presort=presort
    )
    recreate_start = db.clock.now_ms
    for spec in to_recreate:
        if spec.kind == "hash":
            db.create_hash_index(
                table_name,
                spec.column,
                name=spec.name,
                unique=spec.unique,
                bucket_count=spec.bucket_count,
            )
        else:
            db.create_index(
                table_name,
                spec.column,
                name=spec.name,
                unique=spec.unique,
                clustered=spec.clustered,
                max_leaf_entries=spec.max_leaf_entries,
                max_inner_entries=spec.max_inner_entries,
                build_method=create_method,
            )
    db.flush()
    end_ms = db.clock.now_ms
    return DropCreateResult(
        table_name=table_name,
        records_deleted=delete_result.records_deleted,
        elapsed_ms=end_ms - start_ms,
        delete_ms=delete_result.elapsed_ms,
        recreate_ms=end_ms - recreate_start,
        indexes_recreated=[spec.name for spec in to_recreate],
        io=db.disk.stats.delta_since(io_before),
    )

"""Physical bulk-delete (``bd``) primitives.

These are the building blocks the plans of Figures 3-5 compose.  Each
primitive deletes a *set* of entries from one storage structure by
adapting the delete list to that structure's physical layout:

* :func:`bd_index_sort_merge` — merge a key-sorted delete list with the
  leaf chain of a B-link tree (the sort/merge ``bd`` of Figure 3),
* :func:`bd_index_hash_probe` — sweep the leaf chain probing each
  entry's RID against an in-memory hash set (Figure 4); this is the
  "primary join predicate = RID" option,
* :func:`bd_index_partitioned` — range-partition the delete list by key
  and hash-probe one contiguous leaf range per partition (Figure 5),
* :func:`bd_heap_sorted_rids` — sweep the base table in RID order,
* :func:`bd_heap_hash_probe` — scan the base table probing a RID set.

Every primitive returns the deleted entries, because "the output of the
``bd`` operator can serve as the input of another ``bd``" — that piping
is what makes the vertical approach work.  All primitives operate *in
place* on the original leaf/data pages; join methods that would copy or
repartition the structure itself are not applicable to deletion (paper,
Section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.btree.node import MAX_KEY, MIN_KEY, NO_NODE
from repro.btree.tree import BLinkTree
from repro.catalog.catalog import TableInfo
from repro.query.hashtable import BYTES_PER_SET_ENTRY, BoundedHashSet
from repro.query.partition import range_partition
from repro.storage.disk import SimulatedDisk
from repro.storage.rid import RID

Entry = Tuple[int, int]  # (key, packed rid)
Row = Tuple[RID, Tuple[object, ...]]


@dataclass
class BdResult:
    """Outcome of one ``bd`` application to one structure."""

    structure: str
    deleted: List[Entry] = field(default_factory=list)
    pages_visited: int = 0
    pages_freed: int = 0
    partitions: int = 0

    @property
    def deleted_count(self) -> int:
        return len(self.deleted)


def _finish_sweep(
    tree: BLinkTree,
    summaries: List[Entry],
    empties: List[int],
    result: BdResult,
    compact: bool,
) -> None:
    """Free emptied leaves and restore the inner levels after a sweep."""
    if empties:
        tree.unlink_and_free_leaves(empties)
        result.pages_freed = len(empties)
    if compact:
        from repro.core.reorg import compact_leaf_level

        compact_leaf_level(tree)
    else:
        tree.rebuild_upper_levels(summaries if summaries else None)


# ----------------------------------------------------------------------
# index-side primitives
# ----------------------------------------------------------------------
def bd_index_sort_merge(
    tree: BLinkTree,
    sorted_pairs: Sequence[Entry],
    disk: SimulatedDisk,
    match_rid: bool = True,
    compact: bool = False,
    on_removed: Optional[Callable[[List[Entry]], None]] = None,
) -> BdResult:
    """Delete ``sorted_pairs`` from ``tree`` with one leaf-level sweep.

    ``sorted_pairs`` must be sorted by ``(key, rid)``.  When
    ``match_rid`` is false an entry matches on key alone (used when the
    delete list carries keys only — e.g. table D's ``A`` values feeding
    the first ``bd`` of the plan — and one key may match several
    duplicate entries).

    The sweep merges two sorted streams — the delete list and the leaf
    chain — so every leaf page is read (and written back only if
    modified) exactly once, sequentially.  Empty leaves are freed and
    the inner levels are rebuilt afterwards, per the paper's
    layer-by-layer reorganization.
    """
    result = BdResult(structure=tree.name)
    if not sorted_pairs:
        return result
    i = 0
    n = len(sorted_pairs)
    carry: List[Entry] = []
    summaries: List[Entry] = []
    empties: List[int] = []
    page_id = tree.first_leaf_id
    while page_id != NO_NODE:
        node = tree.read_leaf(page_id)
        result.pages_visited += 1
        next_id = node.right_id
        kept = node.entries
        if node.entries and (
            carry or (i < n and sorted_pairs[i][0] <= node.entries[-1][0])
        ):
            kept, removed, i, carry = _merge_out(
                node.entries, sorted_pairs, i, n, match_rid, carry
            )
            disk.charge_cpu_records(len(node.entries))
            if removed:
                if on_removed is not None:
                    # WAL protocol: the redo record must be durable
                    # before the page can be modified (and evicted).
                    on_removed(removed)
                result.deleted.extend(removed)
                tree.write_leaf_entries(page_id, kept)
        if kept:
            summaries.append((kept[0][0], page_id))
        else:
            empties.append(page_id)
        page_id = next_id
    _finish_sweep(tree, summaries, empties, result, compact)
    return result


def _merge_out(
    entries: List[Entry],
    sorted_pairs: Sequence[Entry],
    i: int,
    n: int,
    match_rid: bool,
    carry: List[Entry],
) -> Tuple[List[Entry], List[Entry], int, List[Entry]]:
    """Merge one leaf against the (key-sorted) delete list.

    Leaves are key-ordered along the chain but duplicate keys may span
    leaves with locally ordered values, so the merge consumes every
    delete pair with a key up to this leaf's last key and *carries*
    unmatched pairs sharing exactly that boundary key into the next
    leaf.  Returns ``(kept, removed, new_cursor, new_carry)``.
    """
    last_key = entries[-1][0]
    candidates: List[Entry] = list(carry)
    while i < n and sorted_pairs[i][0] <= last_key:
        candidates.append(sorted_pairs[i])
        i += 1
    kept: List[Entry] = []
    removed: List[Entry] = []
    if match_rid:
        cand_set = set(candidates)
        for entry in entries:
            if entry in cand_set:
                cand_set.discard(entry)
                removed.append(entry)
            else:
                kept.append(entry)
        new_carry = [p for p in cand_set if p[0] == last_key]
    else:
        cand_keys = {key for key, _ in candidates}
        for entry in entries:
            if entry[0] in cand_keys:
                removed.append(entry)
            else:
                kept.append(entry)
        new_carry = [p for p in candidates if p[0] == last_key]
    return kept, removed, i, new_carry


def bd_index_hash_probe(
    tree: BLinkTree,
    rid_set: BoundedHashSet,
    disk: SimulatedDisk,
    compact: bool = False,
    undeletable: Optional[Set[Entry]] = None,
) -> BdResult:
    """Sweep every leaf, dropping entries whose RID is in ``rid_set``.

    This is the classic-hash-join flavour of ``bd`` (Figure 4): the
    hash table is built once from the RID list and the index is scanned
    "in place" at the leaf level — no per-record traversals and no sort
    of the delete list by this index's key.

    ``undeletable`` marks entries inserted by concurrent transactions
    under direct propagation (paper §3.1.2): a concurrently inserted
    entry may re-use a RID from the delete set, and must survive the
    sweep even though its RID probes positive.
    """
    protected = undeletable or set()
    result = BdResult(structure=tree.name)
    summaries: List[Entry] = []
    empties: List[int] = []
    page_id = tree.first_leaf_id
    while page_id != NO_NODE:
        node = tree.read_leaf(page_id)
        result.pages_visited += 1
        next_id = node.right_id
        disk.charge_cpu_records(len(node.entries))
        kept = [
            e for e in node.entries if e[1] not in rid_set or e in protected
        ]
        if len(kept) != len(node.entries):
            result.deleted.extend(
                e for e in node.entries if e[1] in rid_set and e not in protected
            )
            tree.write_leaf_entries(page_id, kept)
        if kept:
            summaries.append((kept[0][0], page_id))
        else:
            empties.append(page_id)
        page_id = next_id
    _finish_sweep(tree, summaries, empties, result, compact)
    return result


def bd_index_partitioned(
    tree: BLinkTree,
    pairs: Iterable[Entry],
    memory_bytes: int,
    disk: SimulatedDisk,
    compact: bool = False,
) -> BdResult:
    """Range-partitioned hash ``bd`` (Figure 5).

    ``pairs`` is the ``(key, RID)`` delete list for this index, in any
    order.  It is range-partitioned by key so each partition's RID hash
    set fits in ``memory_bytes``; each partition then probes only the
    contiguous leaf range its key range maps to — the index "can be
    range partitioned without any cost" because it is clustered by its
    own key.  Inner levels are rebuilt once at the end.
    """
    max_per_partition = max(1, memory_bytes // BYTES_PER_SET_ENTRY)
    partitions = range_partition(
        disk,
        pairs,
        key_index=0,
        width=2,
        max_tuples_per_partition=max_per_partition,
    )
    result = BdResult(structure=tree.name)
    result.partitions = len(partitions)
    summaries: List[Entry] = []
    empties: List[int] = []
    seen_first: Optional[int] = None
    for partition in partitions:
        rid_set = BoundedHashSet(memory_bytes)
        lo, hi = MAX_KEY, MIN_KEY
        for key, rid in partition:
            rid_set.add(rid)
            lo = min(lo, key)
            hi = max(hi, key)
        start = tree.find_leaf(lo)
        result.pages_visited += tree.height - 1  # locating descent
        page_id = start.page_id
        while page_id != NO_NODE:
            node = tree.read_leaf(page_id)
            result.pages_visited += 1
            next_id = node.right_id
            if node.entries and node.first_key() > hi:
                break
            disk.charge_cpu_records(len(node.entries))
            kept = [e for e in node.entries if e[1] not in rid_set]
            if len(kept) != len(node.entries):
                result.deleted.extend(
                    e for e in node.entries if e[1] in rid_set
                )
                tree.write_leaf_entries(page_id, kept)
            page_id = next_id
        partition.free()
    # A final chain walk classifies leaves; these pages are hot in the
    # buffer pool, so this costs no extra physical I/O in the common case.
    page_id = tree.first_leaf_id
    while page_id != NO_NODE:
        node = tree.read_leaf(page_id)
        next_id = node.right_id
        if node.entries:
            summaries.append((node.first_key(), page_id))
        else:
            empties.append(page_id)
        page_id = next_id
    _finish_sweep(tree, summaries, empties, result, compact)
    return result


def collect_index_matches(
    tree: BLinkTree,
    sorted_keys: Sequence[int],
    disk: SimulatedDisk,
) -> BdResult:
    """Read-only sort/merge lookup: which of ``sorted_keys`` are indexed?

    The same sequential leaf merge as :func:`bd_index_sort_merge`, but
    nothing is modified — this is how integrity constraints are checked
    "in such a vertical way as early as possible and before deleting
    records from the table and the indices, so that no work needs to be
    undone if an integrity constraint fails" (paper §2.2).  The result's
    ``deleted`` field holds the *matching* ``(key, RID)`` entries.
    """
    result = BdResult(structure=f"{tree.name} (probe)")
    if not sorted_keys:
        return result
    keys = sorted(set(sorted_keys))
    i, n = 0, len(keys)
    page_id = tree.first_leaf_id
    while page_id != NO_NODE and i < n:
        node = tree.read_leaf(page_id)
        result.pages_visited += 1
        next_id = node.right_id
        if node.entries and keys[i] <= node.entries[-1][0]:
            disk.charge_cpu_records(len(node.entries))
            wanted = set()
            j = i
            while j < n and keys[j] <= node.entries[-1][0]:
                wanted.add(keys[j])
                j += 1
            result.deleted.extend(
                e for e in node.entries if e[0] in wanted
            )
            # Keys equal to the leaf's last key may continue rightward.
            i = j
            while i > 0 and keys[i - 1] == node.entries[-1][0]:
                i -= 1
                break
        page_id = next_id
    return result


# ----------------------------------------------------------------------
# base-table primitives
# ----------------------------------------------------------------------
def bd_heap_sorted_rids(
    table: TableInfo,
    sorted_rids: Sequence[RID],
    disk: SimulatedDisk,
    compact: bool = False,
) -> Tuple[List[Row], BdResult]:
    """Delete RID-sorted records from the base table (one sweep).

    Returns the deleted records' decoded values together with their
    RIDs — the projections feeding the remaining per-index ``bd``
    operators come from here.
    """
    result = BdResult(structure=table.name)
    raw = table.heap.delete_many_sorted(sorted_rids, compact_pages=compact)
    disk.charge_cpu_records(len(raw))
    rows: List[Row] = [
        (rid, table.serializer.unpack(payload)) for rid, payload in raw
    ]
    result.deleted = [(rid.pack(), rid.pack()) for rid, _ in rows]
    result.pages_visited = len({rid.page_id for rid in sorted_rids})
    return rows, result


def bd_heap_hash_probe(
    table: TableInfo,
    rid_set: BoundedHashSet,
    disk: SimulatedDisk,
) -> Tuple[List[Row], BdResult]:
    """Scan all pages of the table, deleting records whose RID probes.

    Figure 4's plan does exactly this for table R: "all pages of table R
    are scanned and the RID of each record is probed with the hash
    table in order to see whether the record should be deleted".
    """
    result = BdResult(structure=table.name)
    rows: List[Row] = []
    to_delete: List[RID] = []
    for page_id, records in table.heap.scan_pages():
        result.pages_visited += 1
        disk.charge_cpu_records(len(records))
        for slot, payload in records:
            rid = RID(page_id, slot)
            if rid.pack() in rid_set:
                rows.append((rid, table.serializer.unpack(payload)))
                to_delete.append(rid)
    table.heap.delete_many_sorted(to_delete)
    result.deleted = [(rid.pack(), rid.pack()) for rid in to_delete]
    return rows, result

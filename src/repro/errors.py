"""Exception hierarchy for the repro engine.

Every error raised by the library derives from :class:`ReproError` so
applications can catch engine failures with a single handler while still
being able to distinguish storage, catalog, transaction, and SQL errors.
"""

from typing import TYPE_CHECKING, Iterable, List, Optional

if TYPE_CHECKING:  # avoid a runtime cycle: analysis imports core/catalog
    from repro.analysis.findings import Finding


class ReproError(Exception):
    """Base class for all errors raised by the repro engine."""


class StorageError(ReproError):
    """A storage-layer invariant was violated (bad page, bad RID, ...)."""


class PageFullError(StorageError):
    """A record does not fit into the target page."""


class BufferPoolError(StorageError):
    """The buffer pool cannot satisfy a request (e.g. all frames pinned)."""


class CatalogError(ReproError):
    """Unknown table/index/column, or a conflicting definition."""


class SchemaError(CatalogError):
    """A record does not match its table schema."""


class IndexError_(ReproError):
    """A B-tree invariant was violated or an entry was not found."""


class UniqueViolationError(IndexError_):
    """An insert would create a duplicate key in a unique index."""


class IntegrityViolationError(ReproError):
    """A referential-integrity constraint would be violated."""


class TransactionError(ReproError):
    """Illegal transaction state transition or lock protocol violation."""


class LockConflictError(TransactionError):
    """A lock request conflicts with a lock held by another transaction."""


class IndexOfflineError(TransactionError):
    """An operation required an on-line index that is currently off-line."""


class RecoveryError(ReproError):
    """The log is corrupt or restart cannot proceed."""


class MediaError(ReproError):
    """A media-level failure: the durable bytes cannot be trusted.

    Media errors are *typed aborts*, never silent wrong answers: a
    statement that cannot obtain a verified page image raises one of
    the leaves below and leaves every structure consistent.  Raising
    them is confined to ``repro/media/`` and ``repro/storage/`` by the
    ``code/media-error-outside-media`` lint rule, so every read-path
    failure goes through the one retry/repair/quarantine policy.

    ``page_id`` names the offending page when there is one.
    """

    def __init__(self, message: str, page_id: "Optional[int]" = None) -> None:
        super().__init__(message)
        self.page_id = page_id


class ChecksumMismatch(MediaError):
    """A page's durable bytes fail their stored checksum (bit rot,
    torn write, stuck bits) — detected on read, before the bytes can
    reach any operator."""


class TransientReadError(MediaError):
    """One read attempt failed but the medium may recover; the caller
    retries with backoff (``repro.media.MediaRecovery``)."""


class RetriesExhausted(MediaError):
    """Bounded retries ran out and no repair image was available."""


class QuarantinedPage(MediaError):
    """The page was quarantined: repair failed (or was impossible) and
    further reads/writes are refused until it is restored offline."""


class CorruptLogError(MediaError, RecoveryError):
    """The write-ahead log *body* is corrupt (media damage to the log
    device).  Also a :class:`RecoveryError`, so existing restart
    handlers keep working."""


class SqlError(ReproError):
    """Base class for SQL front-end errors."""


class SqlSyntaxError(SqlError):
    """The statement could not be parsed."""


class SqlBindError(SqlError):
    """The statement references unknown tables or columns."""


class PlanningError(ReproError):
    """The bulk-delete planner could not produce a valid plan."""


class PlanValidationError(PlanningError):
    """The static plan linter rejected a plan (ERROR-severity findings).

    ``findings`` carries the structured
    :class:`repro.analysis.findings.Finding` objects that fired.
    """

    def __init__(
        self, message: str, findings: "Iterable[Finding]" = ()
    ) -> None:
        super().__init__(message)
        self.findings: "List[Finding]" = list(findings)

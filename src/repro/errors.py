"""Exception hierarchy for the repro engine.

Every error raised by the library derives from :class:`ReproError` so
applications can catch engine failures with a single handler while still
being able to distinguish storage, catalog, transaction, and SQL errors.
"""

from typing import TYPE_CHECKING, Iterable, List

if TYPE_CHECKING:  # avoid a runtime cycle: analysis imports core/catalog
    from repro.analysis.findings import Finding


class ReproError(Exception):
    """Base class for all errors raised by the repro engine."""


class StorageError(ReproError):
    """A storage-layer invariant was violated (bad page, bad RID, ...)."""


class PageFullError(StorageError):
    """A record does not fit into the target page."""


class BufferPoolError(StorageError):
    """The buffer pool cannot satisfy a request (e.g. all frames pinned)."""


class CatalogError(ReproError):
    """Unknown table/index/column, or a conflicting definition."""


class SchemaError(CatalogError):
    """A record does not match its table schema."""


class IndexError_(ReproError):
    """A B-tree invariant was violated or an entry was not found."""


class UniqueViolationError(IndexError_):
    """An insert would create a duplicate key in a unique index."""


class IntegrityViolationError(ReproError):
    """A referential-integrity constraint would be violated."""


class TransactionError(ReproError):
    """Illegal transaction state transition or lock protocol violation."""


class LockConflictError(TransactionError):
    """A lock request conflicts with a lock held by another transaction."""


class IndexOfflineError(TransactionError):
    """An operation required an on-line index that is currently off-line."""


class RecoveryError(ReproError):
    """The log is corrupt or restart cannot proceed."""


class SqlError(ReproError):
    """Base class for SQL front-end errors."""


class SqlSyntaxError(SqlError):
    """The statement could not be parsed."""


class SqlBindError(SqlError):
    """The statement references unknown tables or columns."""


class PlanningError(ReproError):
    """The bulk-delete planner could not produce a valid plan."""


class PlanValidationError(PlanningError):
    """The static plan linter rejected a plan (ERROR-severity findings).

    ``findings`` carries the structured
    :class:`repro.analysis.findings.Finding` objects that fired.
    """

    def __init__(
        self, message: str, findings: "Iterable[Finding]" = ()
    ) -> None:
        super().__init__(message)
        self.findings: "List[Finding]" = list(findings)

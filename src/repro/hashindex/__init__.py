"""Hash indexes — the "other kind" of index the paper's §5 mentions."""

from repro.hashindex.hash_index import HashIndex

__all__ = ["HashIndex"]

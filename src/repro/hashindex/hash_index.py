"""A page-based static hash index.

The paper's §5: "This work was restricted to B+-trees; in our
prototype, other kinds of indices are updated in the traditional way."
This module supplies such an "other kind": a bucket-directory hash
index whose buckets are page chains (primary page + overflow pages).
The bulk-delete executor maintains hash indexes record-at-a-time —
exactly the prototype's behaviour — which the
``test_ablation_hash_index_drag`` bench shows dragging a vertical plan
back toward horizontal cost.  Generalizing the bd operator to hash
structures is the paper's future work, and deliberately not done here.

Bucket page layout (little-endian)::

    u16 entry_count   u16 reserved   i64 overflow_page (0 = none)
    entries: (i64 key, i64 value) pairs
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.errors import IndexError_, UniqueViolationError
from repro.storage.buffer import BufferPool

_HEADER = struct.Struct("<HHq")
HEADER_SIZE = _HEADER.size  # 12
ENTRY_SIZE = 16

Entry = Tuple[int, int]


def _hash_key(key: int, buckets: int) -> int:
    """Multiplicative hash (Knuth); stable across runs."""
    return ((key * 0x9E3779B97F4A7C15) & ((1 << 64) - 1)) % buckets


@dataclass
class _BucketPage:
    """Decoded bucket page."""

    page_id: int
    entries: List[Entry]
    overflow: int  # 0 = none

    @classmethod
    def unpack(cls, page_id: int, data: bytes) -> "_BucketPage":
        count, _, overflow = _HEADER.unpack_from(data, 0)
        flat = struct.unpack_from(f"<{2 * count}q", data, HEADER_SIZE)
        entries = [(flat[2 * i], flat[2 * i + 1]) for i in range(count)]
        return cls(page_id, entries, overflow)

    def pack_into(self, data: bytearray) -> None:
        if HEADER_SIZE + ENTRY_SIZE * len(self.entries) > len(data):
            raise IndexError_(
                f"bucket page {self.page_id} overflow: "
                f"{len(self.entries)} entries"
            )
        _HEADER.pack_into(data, 0, len(self.entries), 0, self.overflow)
        if self.entries:
            flat: List[int] = []
            for key, value in self.entries:
                flat.extend((key, value))
            struct.pack_into(f"<{len(flat)}q", data, HEADER_SIZE, *flat)


class HashIndex:
    """Static-directory hash index with overflow chaining.

    The bucket count is fixed at creation (size it from the expected
    entry count); load beyond ~1 entry per slot degrades gracefully
    into overflow chains.  All operations are record-at-a-time — there
    is no leaf order to sweep, which is precisely why the paper's bd
    operator does not apply to it.
    """

    def __init__(
        self,
        pool: BufferPool,
        name: str = "hash-index",
        bucket_count: int = 64,
        unique: bool = False,
    ) -> None:
        if bucket_count < 1:
            raise IndexError_("hash index needs at least one bucket")
        self.pool = pool
        self.name = name
        self.unique = unique
        self.bucket_count = bucket_count
        self.file_id = pool.disk.create_file()
        self.capacity_per_page = (
            pool.disk.page_size - HEADER_SIZE
        ) // ENTRY_SIZE
        self._buckets: List[int] = []
        for _ in range(bucket_count):
            with pool.pin_new(self.file_id) as pinned:
                page = _BucketPage(pinned.page_id, [], 0)
                page.pack_into(pinned.data)
                pinned.mark_dirty()
                self._buckets.append(pinned.page_id)
        self._entry_count = 0

    @classmethod
    def sized_for(
        cls,
        pool: BufferPool,
        expected_entries: int,
        name: str = "hash-index",
        unique: bool = False,
        fill: float = 0.7,
    ) -> "HashIndex":
        """Create with a bucket count targeting ``fill`` page occupancy."""
        per_page = (pool.disk.page_size - HEADER_SIZE) // ENTRY_SIZE
        buckets = max(1, round(expected_entries / max(1.0, per_page * fill)))
        return cls(pool, name=name, bucket_count=buckets, unique=unique)

    # ------------------------------------------------------------------
    # page I/O
    # ------------------------------------------------------------------
    def _read(self, page_id: int) -> _BucketPage:
        with self.pool.pin(page_id) as pinned:
            return _BucketPage.unpack(page_id, pinned.data)

    def _write(self, page: _BucketPage) -> None:
        with self.pool.pin(page.page_id) as pinned:
            page.pack_into(pinned.data)
            pinned.mark_dirty()

    def _chain(self, key: int) -> Iterator[_BucketPage]:
        page_id = self._buckets[_hash_key(key, self.bucket_count)]
        while page_id:
            page = self._read(page_id)
            yield page
            page_id = page.overflow

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def insert(self, key: int, value: int) -> None:
        if self.unique and self.search(key):
            raise UniqueViolationError(
                f"duplicate key {key} in unique hash index {self.name}"
            )
        last: Optional[_BucketPage] = None
        for page in self._chain(key):
            if len(page.entries) < self.capacity_per_page:
                page.entries.append((key, value))
                self._write(page)
                self._entry_count += 1
                return
            last = page
        assert last is not None
        with self.pool.pin_new(self.file_id) as pinned:
            overflow = _BucketPage(pinned.page_id, [(key, value)], 0)
            overflow.pack_into(pinned.data)
            pinned.mark_dirty()
        last.overflow = overflow.page_id
        self._write(last)
        self._entry_count += 1

    def search(self, key: int) -> List[int]:
        return [
            value
            for page in self._chain(key)
            for k, value in page.entries
            if k == key
        ]

    def contains(self, key: int, value: Optional[int] = None) -> bool:
        values = self.search(key)
        return bool(values) if value is None else value in values

    def delete(self, key: int, value: Optional[int] = None) -> bool:
        """Remove one matching entry; returns whether one was found."""
        for page in self._chain(key):
            for idx, (k, v) in enumerate(page.entries):
                if k == key and (value is None or v == value):
                    del page.entries[idx]
                    self._write(page)
                    self._entry_count -= 1
                    return True
        return False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def entry_count(self) -> int:
        return self._entry_count

    def items(self) -> Iterator[Entry]:
        """Every entry, in bucket order (hash indexes have no key order)."""
        for bucket in self._buckets:
            page_id = bucket
            while page_id:
                page = self._read(page_id)
                yield from page.entries
                page_id = page.overflow

    def page_count(self) -> int:
        count = 0
        for bucket in self._buckets:
            page_id = bucket
            while page_id:
                count += 1
                page_id = self._read(page_id).overflow
        return count

    def validate(self) -> None:
        """Check counts and chain reachability."""
        total = 0
        for bucket_no, bucket in enumerate(self._buckets):
            page_id = bucket
            seen = set()
            while page_id:
                if page_id in seen:
                    raise IndexError_(
                        f"overflow cycle in bucket {bucket_no}"
                    )
                seen.add(page_id)
                page = self._read(page_id)
                for key, _ in page.entries:
                    if _hash_key(key, self.bucket_count) != bucket_no:
                        raise IndexError_(
                            f"key {key} in wrong bucket {bucket_no}"
                        )
                total += len(page.entries)
                page_id = page.overflow
        if total != self._entry_count:
            raise IndexError_(
                f"entry_count {self._entry_count} but buckets hold {total}"
            )

    def drop(self) -> None:
        for bucket in self._buckets:
            page_id = bucket
            while page_id:
                next_id = self._read(page_id).overflow
                self.pool.discard(page_id)
                self.pool.disk.free_page(page_id)
                page_id = next_id
        self._buckets = []
        self._entry_count = 0

"""Media-failure robustness: retry/backoff, repair, quarantine, scrub.

Layered on the storage engine's verified read path (CRC-32 page
checksums stamped at every write, verified at every read — see
:mod:`repro.storage.disk`):

* :class:`MediaRecovery` (:mod:`repro.media.retry`) — the policy layer
  the buffer pool reads through: bounded retries with simulated-time
  exponential backoff for transient faults, repair from WAL
  full-page-write images or a backup for latent corruption, and
  quarantine with a typed :class:`~repro.errors.QuarantinedPage` when
  the medium is genuinely bad (stuck bits re-corrupt every repair),
* :func:`scrub_database` / :func:`require_scrubbed`
  (:mod:`repro.media.scrub`) — the online amcheck-style scrubber:
  checksum sweep over every live page plus heap <-> B+-tree <-> hash
  index cross-reconciliation,
* :func:`media_sweep` (:mod:`repro.media.sweep`) — the exhaustive
  driver: every pre-statement page x every read-fault kind, asserting
  heal-to-oracle or clean typed abort.

The code lint's ``code/media-error-outside-media`` rule confines
raising the media error family to this package and ``repro/storage/``.
"""

from repro.media.retry import (
    MediaPolicy,
    MediaRecovery,
    MediaStats,
    wal_image_source,
)
from repro.media.scrub import ScrubReport, require_scrubbed, scrub_database

# The sweep driver imports repro.recovery (which reaches back into this
# package through the pool's media hook at runtime); resolve it lazily
# to keep module import order flexible, mirroring repro.faults.
_SWEEP_NAMES = (
    "MediaPointOutcome",
    "MediaSweepReport",
    "media_sweep",
)


def __getattr__(name: str):
    if name in _SWEEP_NAMES:
        from repro.media import sweep

        return getattr(sweep, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "MediaPointOutcome",
    "MediaPolicy",
    "MediaRecovery",
    "MediaStats",
    "MediaSweepReport",
    "ScrubReport",
    "media_sweep",
    "require_scrubbed",
    "scrub_database",
    "wal_image_source",
]

"""The media recovery layer: retry, backoff, repair, quarantine.

:class:`MediaRecovery` wraps a disk's verified read path in the policy
a real storage engine applies between "the read failed" and "the query
fails":

1. **Retry with backoff** — a :class:`~repro.errors.TransientReadError`
   is re-attempted up to ``max_read_attempts`` times, sleeping an
   exponentially growing backoff on the *simulated* clock between
   attempts, so the latency cost of flaky media shows up in every
   trace and benchmark exactly like any other I/O cost.
2. **Repair from a full-page image** — a
   :class:`~repro.errors.ChecksumMismatch` (or retries that keep
   failing) falls through to the configured image sources, ordered:
   typically the WAL's full-page-write images first, then an external
   backup.  A repair is an ordinary ``write_page`` — charged, observed,
   and (deliberately) routed through any armed fault injector, so
   stuck-bit media corrupts the repair too.
3. **Quarantine** — when repair itself keeps producing unreadable
   bytes, the page is fenced off via ``disk.quarantine_page`` and the
   caller gets a typed :class:`~repro.errors.QuarantinedPage`; when no
   source has an image at all, :class:`~repro.errors.RetriesExhausted`
   is raised and the page is *left alone* (restart uses this to skip
   freshly allocated pages that no durable structure references).

A caution on WAL images as a repair source: a ``page_image`` record is
the page's content *before* the statement first dirtied it.  Repairing
from it is only correct when logical redo follows (restart's contract)
or when the open statement has not modified the page — which holds for
the buffer pool's use here, because a pool miss reads a page before
anything can dirty its frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import (
    ChecksumMismatch,
    MediaError,
    QuarantinedPage,
    RetriesExhausted,
    TransientReadError,
)
from repro.obs.trace import maybe_span
from repro.storage.disk import SimulatedDisk

#: ``source(page_id) -> image or None`` — one place a known-good
#: full-page image might come from.
ImageSource = Callable[[int], Optional[bytes]]


@dataclass(frozen=True)
class MediaPolicy:
    """How hard to try before giving a read up for dead."""

    #: Total read attempts per call (first try included).
    max_read_attempts: int = 4
    #: Simulated milliseconds slept before the first retry.
    backoff_ms: float = 1.0
    #: Growth factor between consecutive backoffs.
    backoff_multiplier: float = 2.0
    #: Repair-and-reread cycles before quarantining the page.
    repair_attempts: int = 2

    def __post_init__(self) -> None:
        if self.max_read_attempts < 1:
            raise ValueError("max_read_attempts must be at least 1")
        if self.backoff_ms < 0 or self.backoff_multiplier < 1:
            raise ValueError("backoff must be non-negative and non-shrinking")
        if self.repair_attempts < 0:
            raise ValueError("repair_attempts must be non-negative")


@dataclass
class MediaStats:
    """What one :class:`MediaRecovery` instance did."""

    reads: int = 0
    transient_failures: int = 0
    checksum_failures: int = 0
    retries: int = 0
    backoff_ms: float = 0.0
    repairs: int = 0
    quarantines: int = 0


def wal_image_source(log: Any) -> ImageSource:
    """Latest full-page-write image per page from a WAL's ``page_image``
    records (duck-typed: anything with ``records(kind)``)."""

    def source(page_id: int) -> Optional[bytes]:
        image: Optional[bytes] = None
        for record in log.records("page_image"):
            if record.payload["page_id"] == page_id:
                image = record.payload["image"]
        return image

    return source


class MediaRecovery:
    """Read pages through retry/repair/quarantine policy.

    ``image_sources`` is an ordered sequence of ``(label, source)``
    pairs; the label ("wal", "backup", ...) tags repair metrics and
    trace attributes.  Attach to a :class:`~repro.storage.buffer
    .BufferPool` by assigning ``pool.media = recovery`` — every pool
    miss then reads through :meth:`read`.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        policy: Optional[MediaPolicy] = None,
        image_sources: Sequence[Tuple[str, ImageSource]] = (),
    ) -> None:
        self.disk = disk
        self.policy = policy or MediaPolicy()
        self.image_sources: List[Tuple[str, ImageSource]] = list(image_sources)
        self.stats = MediaStats()

    # ------------------------------------------------------------------
    def read(self, page_id: int) -> bytes:
        """Read ``page_id``, healing what the policy allows.

        The no-fault fast path is a single plain disk read: no span is
        opened, no clock is advanced, nothing is recorded — a faultless
        run through this layer is bit-identical to one without it.
        """
        self.stats.reads += 1
        disk = self.disk
        try:
            return disk.read_page(page_id)  # lint: allow(raw-page-io)
        except TransientReadError as exc:
            self.stats.transient_failures += 1
            first: MediaError = exc
        except ChecksumMismatch as exc:
            self.stats.checksum_failures += 1
            first = exc
        with maybe_span(
            disk.observer,
            f"media-retry page {page_id}",
            kind="retry",
            target=f"page:{page_id}",
            error=type(first).__name__,
        ) as span:
            return self._recover(page_id, first, span)

    def has_image(self, page_id: int) -> bool:
        """Whether any configured source could repair ``page_id``."""
        return any(source(page_id) is not None
                   for _, source in self.image_sources)

    # ------------------------------------------------------------------
    # slow path
    # ------------------------------------------------------------------
    def _recover(self, page_id: int, failure: MediaError, span: Any) -> bytes:
        disk = self.disk
        policy = self.policy
        attempt = 1
        backoff = policy.backoff_ms
        # Phase 1: bounded retries with exponential backoff.  Only a
        # transient failure is worth re-reading — corrupt bytes at rest
        # stay corrupt no matter how long we wait.
        while (
            isinstance(failure, TransientReadError)
            and attempt < policy.max_read_attempts
        ):
            disk.clock.advance_ms(backoff)
            self.stats.retries += 1
            self.stats.backoff_ms += backoff
            attempt += 1
            if disk.observer is not None:
                disk.observer.on_media_retry(page_id, attempt, backoff)
            backoff *= policy.backoff_multiplier
            try:
                data = disk.read_page(page_id)  # lint: allow(raw-page-io)
                span.set(attempts=attempt, outcome="retried")
                return data
            except (TransientReadError, ChecksumMismatch) as exc:
                failure = exc

        # Phase 2: rewrite from a known-good image and re-read.  The
        # write restamps the checksum and goes through any armed
        # injector, so genuinely stuck media re-corrupts it and the
        # re-read fails again.
        repaired = False
        for _ in range(policy.repair_attempts):
            source_label = self._repair(page_id)
            if source_label is None:
                break
            repaired = True
            try:
                data = disk.read_page(page_id)  # lint: allow(raw-page-io)
                span.set(attempts=attempt, outcome="repaired",
                         source=source_label)
                return data
            except (TransientReadError, ChecksumMismatch) as exc:
                failure = exc

        if repaired:
            # Repair writes keep coming back unreadable: the medium
            # itself is bad.  Fence the page off so every later access
            # fails fast and typed instead of flapping.
            self.stats.quarantines += 1
            disk.quarantine_page(page_id)
            span.set(attempts=attempt, outcome="quarantined")
            raise QuarantinedPage(
                f"page {page_id} quarantined: {policy.repair_attempts} "
                f"repair attempts each produced unreadable bytes",
                page_id=page_id,
            )
        span.set(attempts=attempt, outcome="exhausted")
        raise RetriesExhausted(
            f"read of page {page_id} still failing after {attempt} "
            f"attempts and no repair image is available "
            f"({type(failure).__name__}: {failure})",
            page_id=page_id,
        )

    def _repair(self, page_id: int) -> Optional[str]:
        """Rewrite the page from the first source that has an image."""
        for label, source in self.image_sources:
            image = source(page_id)
            if image is None:
                continue
            self.stats.repairs += 1
            self.disk.write_page(page_id, image)  # lint: allow(raw-page-io)
            if self.disk.observer is not None:
                self.disk.observer.on_media_repair(page_id, label)
            return label
        return None

"""Exhaustive media-fault sweep: every page x every read-fault kind.

The analogue of :func:`repro.faults.sweep.crash_point_sweep` for media
failures.  On the same deterministic scenario:

1. run the recoverable bulk delete **fault-free**, capturing the
   pre-statement state and the *oracle* end state,
2. for every live pre-statement page p and every read-fault kind
   (transient / latent / stuck), rebuild the identical scenario, arm a
   :class:`~repro.faults.injector.FaultInjector` whose plan targets p,
   attach a :class:`~repro.media.retry.MediaRecovery` to the buffer
   pool, and run the statement,
3. require one of exactly two outcomes:

   * **healed** — the statement completes; a post-run scrub heals any
     still-damaged pages the statement never touched; the final state
     is bit-equivalent to the oracle and internally consistent, or
   * **aborted** — a typed :class:`~repro.errors.MediaError` escapes
     *before the statement modified anything* (stuck bits are caught by
     the ``require_scrubbed`` gate, which quarantines the page); the
     database still equals its pre-statement image, and after the
     operator "replaces the medium" (``restore_page`` from backup) a
     fault-free re-run reaches the oracle.

The per-point repair sources mirror a real deployment: the WAL's
full-page-write images first, then a backup taken of the pre-statement
durable image.  WAL images are safe here because a pool miss reads a
page before its frame can be dirtied, so a mid-statement repair always
happens before the statement's own modifications to that page (see
:mod:`repro.media.retry`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import MediaError, QuarantinedPage, ReproError
from repro.faults.injector import FaultInjector
from repro.faults.plan import READ_FAULT_KINDS, STUCK, FaultPlan
from repro.faults.sweep import (
    SweepScenario,
    _choose_points,
    capture_state,
    integrity_problems,
)
from repro.media.retry import MediaPolicy, MediaRecovery, wal_image_source
from repro.media.scrub import require_scrubbed, scrub_database
from repro.recovery.restart import RecoverableBulkDelete


@dataclass
class MediaPointOutcome:
    """One (page, fault kind) run of the sweep."""

    page_id: int
    kind: str
    #: ``"healed"`` or ``"aborted"``.
    outcome: str = ""
    #: Exception class name for aborted points.
    aborted_with: Optional[str] = None
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


@dataclass
class MediaSweepReport:
    """Everything a media sweep did and found."""

    #: Live pages in the pre-statement durable image.
    durable_pages: int = 0
    #: The page ids actually swept (all, or evenly sampled).
    pages: List[int] = field(default_factory=list)
    outcomes: List[MediaPointOutcome] = field(default_factory=list)

    @property
    def failures(self) -> List[MediaPointOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        healed = sum(1 for o in self.outcomes if o.outcome == "healed")
        aborted = sum(1 for o in self.outcomes if o.outcome == "aborted")
        kinds = len({o.kind for o in self.outcomes}) or 1
        lines = [
            f"durable pages: {self.durable_pages}; points swept: "
            f"{len(self.outcomes)} ({len(self.pages)} pages x "
            f"{kinds} kinds); healed: {healed}; "
            f"clean aborts: {aborted}; failures: {len(self.failures)}"
        ]
        for outcome in self.failures[:10]:
            lines.append(
                f"  FAIL page {outcome.page_id} ({outcome.kind}): "
                f"{outcome.problems[0]}"
            )
        return "\n".join(lines)


def media_sweep(
    scenario: Optional[SweepScenario] = None,
    max_points: Optional[int] = None,
    policy: Optional[MediaPolicy] = None,
    log_fn: Optional[Callable[[str], None]] = None,
) -> MediaSweepReport:
    """Sweep every read-fault kind over every (or ``max_points`` evenly
    sampled) pre-statement page of the scenario's bulk delete."""
    scenario = scenario or SweepScenario()
    say = log_fn or (lambda message: None)

    # Pass 0: pre-statement pages + state, fault-free oracle state.
    case = scenario.build()
    pages = case.db.disk.page_ids()
    initial = capture_state(case.db)
    RecoverableBulkDelete(
        case.db, "R", "A", case.keys, case.log,
        full_page_writes=True, lanes=scenario.lanes,
    ).run()
    oracle = capture_state(case.db)
    oracle_problems = integrity_problems(case.db, case.registry, case.keys)
    if oracle_problems:
        raise ReproError(
            "fault-free oracle run is already inconsistent: "
            + "; ".join(oracle_problems)
        )

    report = MediaSweepReport(durable_pages=len(pages))
    report.pages = [
        pages[i - 1] for i in _choose_points(len(pages), max_points)
    ]
    say(
        f"oracle: {len(pages)} durable pages; sweeping "
        f"{len(report.pages)} of them x {len(READ_FAULT_KINDS)} "
        f"fault kinds"
    )
    for kind in READ_FAULT_KINDS:
        for page_id in report.pages:
            outcome = _run_media_point(
                scenario, page_id, kind, initial, oracle, policy
            )
            report.outcomes.append(outcome)
            if not outcome.ok:
                say(
                    f"  page {page_id} ({kind}): FAIL: "
                    f"{outcome.problems[0]}"
                )
    return report


def _run_media_point(
    scenario: SweepScenario,
    page_id: int,
    kind: str,
    initial: Dict,
    oracle: Dict,
    policy: Optional[MediaPolicy],
) -> MediaPointOutcome:
    outcome = MediaPointOutcome(page_id=page_id, kind=kind)
    case = scenario.build()
    db, log = case.db, case.log
    disk = db.disk
    # The operator's backup: the pre-statement durable image of every
    # page (taken before the injector arms and corrupts anything).
    backup = {pid: disk.durable_image(pid) for pid in disk.page_ids()}
    injector = FaultInjector(
        FaultPlan(read_fault=kind, read_fault_page=page_id)
    )
    media = MediaRecovery(
        disk,
        policy=policy,
        image_sources=[
            ("wal", wal_image_source(log)),
            ("backup", backup.get),
        ],
    )
    db.pool.media = media
    try:
        # Arming applies at-rest corruption for latent/stuck plans.
        with injector.armed(disk, pool=db.pool, log=log):
            try:
                if kind == STUCK:
                    # The amcheck gate: genuinely bad media must fail
                    # the statement before it can modify anything.
                    # (Transient and latent points skip the gate — the
                    # mid-statement retry/repair path must heal them.)
                    require_scrubbed(db, media=media,
                                     check_structures=False)
                RecoverableBulkDelete(
                    db, "R", "A", case.keys, log,
                    full_page_writes=True, lanes=scenario.lanes,
                ).run()
            except MediaError as exc:
                return _verify_clean_abort(
                    case, injector, backup, page_id, exc, initial,
                    oracle, outcome,
                )
            # Healed path: the statement completed.  Pages it never
            # read may still be damaged; the scrubber must finish the
            # job online.
            outcome.outcome = "healed"
            post = scrub_database(db, media=media)
            if not post.ok:
                outcome.problems.append(
                    "post-run scrub could not heal the database: "
                    + post.summary()
                )
    finally:
        db.pool.media = None
    state = capture_state(db)
    if state != oracle:
        outcome.problems.append(
            f"healed state != oracle (page {page_id}, {kind})"
        )
    outcome.problems.extend(
        integrity_problems(db, case.registry, case.keys)
    )
    return outcome


def _verify_clean_abort(
    case,
    injector: FaultInjector,
    backup: Dict[int, bytes],
    page_id: int,
    exc: MediaError,
    initial: Dict,
    oracle: Dict,
    outcome: MediaPointOutcome,
) -> MediaPointOutcome:
    """An abort is acceptable only if it is typed, names the faulty
    page, fenced it off, and modified nothing — and a fault-free re-run
    after media replacement reaches the oracle."""
    outcome.outcome = "aborted"
    outcome.aborted_with = type(exc).__name__
    db = case.db
    disk = db.disk
    if not isinstance(exc, QuarantinedPage):
        outcome.problems.append(
            f"abort raised {type(exc).__name__}, expected QuarantinedPage"
        )
    if exc.page_id != page_id:
        outcome.problems.append(
            f"abort names page {exc.page_id}, expected {page_id}"
        )
    if disk.quarantined != {page_id}:
        outcome.problems.append(
            f"quarantined set is {sorted(disk.quarantined)}, "
            f"expected [{page_id}]"
        )
    if any(True for _ in case.log.records("bulk_begin")):
        outcome.problems.append(
            "statement started before the abort (bulk_begin logged); "
            "modifications may have been lost"
        )
    # The abort must have left the pre-statement image intact modulo
    # the injected damage itself; replace the medium and check.
    disk.restore_page(page_id, backup[page_id])
    injector.disarm()
    db.pool.media = None
    if capture_state(db) != initial:
        outcome.problems.append(
            "abort was not clean: state != pre-statement image after "
            "media replacement"
        )
        return outcome
    # The client's contract after an abort: fix the medium, re-issue.
    RecoverableBulkDelete(
        db, "R", "A", case.keys, case.log, full_page_writes=True,
    ).run()
    if capture_state(db) != oracle:
        outcome.problems.append(
            "re-issued statement after media replacement != oracle"
        )
    outcome.problems.extend(
        integrity_problems(db, case.registry, case.keys)
    )
    return outcome

"""The online scrubber: checksum sweep + structural cross-checks.

``scrub_database`` is the amcheck-style maintenance pass:

1. **Checksum sweep** — every live, unquarantined page is read with
   verification on.  With a :class:`~repro.media.retry.MediaRecovery`
   attached, a failing page is healed in place (retry for transient
   faults, repair-from-image for latent corruption) and reported as
   repaired; without one, the damage is detected and reported but left
   as found.
2. **Cross-reconciliation** — every table's heap is scanned and checked
   against its stored record count, every B+-tree index is structurally
   validated and its entries (and entry count) compared against the
   key/RID projection of the heap rows, and every hash index's entries
   are compared the same way.  Any disagreement means a structure lost
   or gained rows relative to the others — exactly the damage silent
   media corruption causes when it lands on an index page whose bytes
   still parse.

``require_scrubbed`` is the gate form: it raises a typed
:class:`~repro.errors.MediaError` unless the scrub comes back clean, so
a caller can refuse to run a statement over damaged storage (the media
sweep uses it to prove unrepairable faults abort *before* anything is
modified).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.btree.maintenance import validate_tree
from repro.errors import (
    ChecksumMismatch,
    MediaError,
    QuarantinedPage,
    ReproError,
    RetriesExhausted,
    TransientReadError,
)
from repro.obs.trace import maybe_span


@dataclass
class ScrubReport:
    """Everything one scrub pass saw, page by page and structure by
    structure."""

    #: Pages read and verified successfully (healed ones included).
    pages_checked: int = 0
    #: Pages whose at-rest bytes failed their stored CRC.
    checksum_failures: List[int] = field(default_factory=list)
    #: Subset of the above readable again after retry/repair.
    repaired: List[int] = field(default_factory=list)
    #: Pages the scrub (or an earlier failure) fenced off.
    quarantined: List[int] = field(default_factory=list)
    #: Pages already quarantined before this pass (not re-read).
    skipped_quarantined: List[int] = field(default_factory=list)
    #: Pages still unreadable but not quarantined (no repair image, or
    #: no media layer attached to heal them).
    unrepaired: List[int] = field(default_factory=list)
    #: Cross-reconciliation violations (heap vs indexes vs counts).
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (
            self.quarantined
            or self.skipped_quarantined
            or self.unrepaired
            or self.problems
        )

    def summary(self) -> str:
        lines = [
            f"scrub: {self.pages_checked} pages verified; "
            f"{len(self.checksum_failures)} checksum failures, "
            f"{len(self.repaired)} repaired, "
            f"{len(self.unrepaired)} unrepaired, "
            f"{len(self.quarantined) + len(self.skipped_quarantined)} "
            f"quarantined; {len(self.problems)} structural problems"
        ]
        for page_id in self.checksum_failures[:10]:
            status = (
                "repaired" if page_id in self.repaired
                else "quarantined" if page_id in self.quarantined
                else "unrepaired"
            )
            lines.append(f"  page {page_id}: checksum mismatch ({status})")
        for problem in self.problems[:10]:
            lines.append(f"  {problem}")
        return "\n".join(lines)


def scrub_database(
    db: Any,
    media: Optional[Any] = None,
    check_structures: bool = True,
) -> ScrubReport:
    """One full scrub pass over ``db``; see the module docstring.

    The sweep reads *durable* bytes (not pool frames) — the point is to
    verify what would survive a crash.  The reads are charged to the
    simulated clock like any others; that cost is the scrub overhead
    the ``fig_scrub_overhead`` benchmark measures.
    """
    disk = db.disk
    report = ScrubReport()
    with maybe_span(db.obs, "scrub", kind="scrub") as span:
        for page_id in disk.page_ids():
            if page_id in disk.quarantined:
                report.skipped_quarantined.append(page_id)
                continue
            # Uncharged classification peek so a healed page can be
            # reported as a failure *and* a repair; the verified read
            # below is the one that pays.
            was_clean = disk.verify_page(page_id)
            if not was_clean:
                report.checksum_failures.append(page_id)
            try:
                if media is not None:
                    media.read(page_id)
                else:
                    disk.read_page(page_id)  # lint: allow(raw-page-io)
                report.pages_checked += 1
                if not was_clean:
                    report.repaired.append(page_id)
            except QuarantinedPage:
                report.quarantined.append(page_id)
            except RetriesExhausted:
                report.unrepaired.append(page_id)
            except (TransientReadError, ChecksumMismatch):
                # No media layer to heal it: detected, left as found.
                report.unrepaired.append(page_id)
        if check_structures:
            try:
                report.problems.extend(_reconcile(db))
            except MediaError as exc:
                # With no media layer to heal a damaged page, the scan
                # underneath reconciliation dies on it; the sweep above
                # already lists the page, so record and carry on.
                report.problems.append(
                    f"reconciliation aborted: {type(exc).__name__}: {exc}"
                )
        span.set(
            pages_checked=report.pages_checked,
            failures=len(report.checksum_failures),
            repaired=len(report.repaired),
            problems=len(report.problems),
        )
    if db.obs is not None:
        db.obs.on_scrub(
            report.pages_checked,
            len(report.checksum_failures),
            len(report.repaired),
        )
    return report


def require_scrubbed(
    db: Any,
    media: Optional[Any] = None,
    check_structures: bool = True,
) -> ScrubReport:
    """Scrub and raise a typed media error unless the pass is clean.

    Quarantined pages dominate the failure type (the storage is known
    bad and fenced off); unrepaired-but-unquarantined pages raise
    :class:`~repro.errors.RetriesExhausted`; pure structural
    disagreements raise the :class:`~repro.errors.MediaError` base.
    """
    report = scrub_database(db, media=media, check_structures=check_structures)
    if report.ok:
        return report
    fenced = sorted(set(report.quarantined + report.skipped_quarantined))
    if fenced:
        raise QuarantinedPage(
            f"scrub failed: page(s) {fenced} are quarantined "
            f"(restore_page() them from a backup image)",
            page_id=fenced[0],
        )
    if report.unrepaired:
        raise RetriesExhausted(
            f"scrub failed: page(s) {sorted(report.unrepaired)} are "
            f"unreadable and no repair image is available",
            page_id=report.unrepaired[0],
        )
    raise MediaError(
        "scrub failed: structures disagree: " + "; ".join(report.problems[:5])
    )


# ----------------------------------------------------------------------
# cross-reconciliation
# ----------------------------------------------------------------------
def _reconcile(db: Any, limit: int = 20) -> List[str]:
    """Heap <-> index <-> count disagreements, all tables, both index
    kinds.  Self-contained (no oracle): the structures are checked
    against *each other*, which is all an online scrubber can do."""
    problems: List[str] = []

    def note(message: str) -> None:
        if len(problems) < limit:
            problems.append(message)

    for table in db.catalog.tables():
        table_name = table.schema.name
        rows = list(db.scan(table_name))
        if table.heap.record_count != len(rows):
            note(
                f"{table_name}: heap record_count "
                f"{table.heap.record_count} != {len(rows)} scanned rows"
            )
        for name, ix in sorted(table.indexes.items()):
            expected = sorted(
                (ix.key_for(values, table.schema), rid.pack())
                for rid, values in rows
            )
            items, count = _index_entries(ix, note, f"{table_name}.{name}")
            if items is None:
                continue
            if count != len(items):
                note(
                    f"{table_name}.{name}: entry_count {count} != "
                    f"{len(items)} entries"
                )
            if sorted(items) != expected:
                note(
                    f"{table_name}.{name}: {len(items)} entries do not "
                    f"match the {len(rows)} heap rows"
                )
    return problems


def _index_entries(
    ix: Any, note: Any, label: str
) -> Tuple[Optional[list], int]:
    if ix.is_btree:
        try:
            validate_tree(ix.tree)
        except ReproError as exc:
            note(f"{label}: structural: {exc}")
            return None, 0
        return list(ix.tree.items()), ix.tree.entry_count
    hash_index = ix.hash_index
    return list(hash_index.items()), hash_index.entry_count

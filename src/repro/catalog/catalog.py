"""Catalog objects: tables, indexes, and their runtime state."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lsm.tree import LsmTree
    from repro.shard.map import ShardMap

from repro.btree.tree import BLinkTree
from repro.catalog.composite import CompositeKeyCodec
from repro.catalog.schema import DataType, TableSchema
from repro.errors import CatalogError, SchemaError
from repro.storage.heap import HeapFile
from repro.storage.rid import RID
from repro.storage.serializer import RecordSerializer


class IndexState(enum.Enum):
    """Availability of an index (Section 3 of the paper).

    A bulk delete takes indexes *off-line*; concurrent updaters must
    then either log their changes to a side-file or install them
    directly under latches.
    """

    ONLINE = "online"
    OFFLINE = "offline"


@dataclass
class IndexInfo:
    """One secondary (or clustered) index.

    ``column`` names the (first) indexed column; compound indexes set
    ``columns``/``codec`` and derive their keys by packing the column
    values into one order-preserving integer — after which "compound
    indices ... can be treated just like indices on a single attribute"
    (paper §2.2): every bd operator works on them unchanged.
    """

    name: str
    table_name: str
    column: str
    tree: Optional[BLinkTree] = None
    unique: bool = False
    clustered: bool = False
    state: IndexState = IndexState.ONLINE
    columns: Tuple[str, ...] = ()
    codec: Optional[CompositeKeyCodec] = None
    #: 'btree' (participates in vertical bulk deletes) or 'hash'
    #: (maintained record-at-a-time, as the paper's prototype did for
    #: non-B-tree indexes).
    kind: str = "btree"
    hash_index: Optional[object] = None  # repro.hashindex.HashIndex

    def __post_init__(self) -> None:
        if not self.columns:
            self.columns = (self.column,)
        if (self.codec is not None) != (len(self.columns) > 1):
            raise CatalogError(
                "compound indexes need a codec; single-column ones none"
            )
        if self.kind not in ("btree", "hash"):
            raise CatalogError(f"unknown index kind {self.kind!r}")
        if (self.kind == "btree") != (self.tree is not None):
            raise CatalogError("btree indexes need a tree; hash ones none")
        if (self.kind == "hash") != (self.hash_index is not None):
            raise CatalogError("hash indexes need a hash_index")
        if self.kind == "hash" and self.clustered:
            raise CatalogError("hash indexes cannot be clustered")

    @property
    def is_compound(self) -> bool:
        return self.codec is not None

    @property
    def is_btree(self) -> bool:
        return self.kind == "btree"

    @property
    def entry_count(self) -> int:
        structure = self.tree if self.is_btree else self.hash_index
        return structure.entry_count  # type: ignore[union-attr]

    def structure_insert(self, key: int, packed_rid: int) -> None:
        if self.is_btree:
            self.tree.insert(key, packed_rid)  # type: ignore[union-attr]
        else:
            self.hash_index.insert(key, packed_rid)  # type: ignore[union-attr]

    def structure_delete(self, key: int, packed_rid: int) -> bool:
        if self.is_btree:
            return self.tree.delete(key, packed_rid)  # type: ignore[union-attr]
        return self.hash_index.delete(key, packed_rid)  # type: ignore[union-attr]

    def structure_contains(self, key: int) -> bool:
        if self.is_btree:
            return self.tree.contains(key)  # type: ignore[union-attr]
        return self.hash_index.contains(key)  # type: ignore[union-attr]

    def key_for(self, values: Tuple[object, ...], schema: TableSchema) -> int:
        """Index key of one record tuple (packed for compound indexes)."""
        if self.codec is not None:
            parts = [
                values[schema.column_index(col)] for col in self.columns
            ]
            return self.codec.pack(parts)  # type: ignore[arg-type]
        attr = schema.attribute(self.column)
        if attr.data_type is not DataType.INT:
            raise SchemaError(
                f"column {self.column} is not INT; only integer columns "
                "are indexable"
            )
        return values[schema.column_index(self.column)]  # type: ignore[return-value]

    def covers_column(self, column: str) -> bool:
        return column in self.columns

    @property
    def is_online(self) -> bool:
        return self.state is IndexState.ONLINE

    def set_offline(self) -> None:
        self.state = IndexState.OFFLINE

    def set_online(self) -> None:
        self.state = IndexState.ONLINE


class TableInfo:
    """A table: schema, heap file, serializer, and its indexes.

    A *range-sharded* table is a logical entry whose ``shard_map``
    partitions its key space and whose ``shards`` list holds one
    physical ``TableInfo`` per range (each with its own heap and
    indexes, named ``{name}::s{i}``).  The logical entry's own heap
    stays empty — rows live only in the shards — and DML against it
    routes through the map (see :meth:`Database.create_sharded_table
    <repro.catalog.database.Database.create_sharded_table>`).
    """

    def __init__(self, schema: TableSchema, heap: HeapFile) -> None:
        self.schema = schema
        self.heap = heap
        self.serializer = RecordSerializer(schema)
        self.indexes: Dict[str, IndexInfo] = {}
        #: Range partitioning of this table, or ``None`` (unsharded).
        self.shard_map: Optional["ShardMap"] = None
        #: Physical per-range tables, index-aligned with the map.
        self.shards: List["TableInfo"] = []
        #: Per-shard access counters (keys routed), the raw feed of
        #: hot-range detection.  Plain dict arithmetic — the planner
        #: reads it I/O-free; executors bump it via
        #: :meth:`note_shard_access`.
        self.shard_accesses: Dict[int, int] = {}
        #: Storage engine backing this table (see
        #: :mod:`repro.storage.engine`): ``"heap"`` (the default
        #: heap + B-link path) or ``"lsm"``.
        self.engine: str = "heap"
        #: The LSM tree holding this table's rows when
        #: ``engine == "lsm"`` (its heap then stays empty, like a
        #: sharded table's logical entry).
        self.lsm: Optional["LsmTree"] = None
        #: The INT column LSM rows are keyed by.
        self.lsm_key_column: Optional[str] = None

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def record_count(self) -> int:
        if self.lsm is not None:
            return self.lsm.approx_records
        if self.is_sharded:
            return sum(shard.heap.record_count for shard in self.shards)
        return self.heap.record_count

    @property
    def is_sharded(self) -> bool:
        return self.shard_map is not None

    @property
    def is_lsm(self) -> bool:
        return self.lsm is not None

    def shard(self, shard_id: int) -> "TableInfo":
        try:
            return self.shards[shard_id]
        except IndexError:
            raise CatalogError(
                f"table {self.name} has no shard {shard_id}"
            )

    def note_shard_access(self, shard_id: int, keys: int = 1) -> None:
        """Record that ``keys`` accesses routed to one shard."""
        self.shard_accesses[shard_id] = (
            self.shard_accesses.get(shard_id, 0) + keys
        )

    def add_index(self, index: IndexInfo) -> None:
        if index.name in self.indexes:
            raise CatalogError(f"index {index.name} already exists")
        if index.clustered and self.clustered_index() is not None:
            raise CatalogError(
                f"table {self.name} already has a clustered index"
            )
        self.indexes[index.name] = index

    def drop_index(self, name: str) -> IndexInfo:
        try:
            return self.indexes.pop(name)
        except KeyError:
            raise CatalogError(f"no index {name} on table {self.name}")

    def index(self, name: str) -> IndexInfo:
        try:
            return self.indexes[name]
        except KeyError:
            raise CatalogError(f"no index {name} on table {self.name}")

    def indexes_on(self, column: str) -> List[IndexInfo]:
        """Single-column B-tree indexes usable to drive ``column`` lookups."""
        return [
            ix
            for ix in self.indexes.values()
            if ix.column == column and not ix.is_compound and ix.is_btree
        ]

    def btree_indexes(self) -> List[IndexInfo]:
        return [ix for ix in self.indexes.values() if ix.is_btree]

    def hash_indexes(self) -> List[IndexInfo]:
        return [ix for ix in self.indexes.values() if not ix.is_btree]

    def indexes_covering(self, column: str) -> List[IndexInfo]:
        """Every index (compound included) that contains ``column``."""
        return [
            ix for ix in self.indexes.values() if ix.covers_column(column)
        ]

    def clustered_index(self) -> Optional[IndexInfo]:
        for ix in self.indexes.values():
            if ix.clustered:
                return ix
        return None

    def key_of(self, values: Tuple[object, ...], column: str) -> int:
        """Extract an (integer) index key from a record tuple."""
        attr = self.schema.attribute(column)
        if attr.data_type is not DataType.INT:
            raise SchemaError(
                f"column {column} is not INT; only integer columns are "
                "indexable"
            )
        return values[self.schema.column_index(column)]  # type: ignore[return-value]


class Catalog:
    """Name → table registry."""

    def __init__(self) -> None:
        self._tables: Dict[str, TableInfo] = {}

    def add_table(self, table: TableInfo) -> None:
        if table.name in self._tables:
            raise CatalogError(f"table {table.name} already exists")
        self._tables[table.name] = table

    def drop_table(self, name: str) -> TableInfo:
        try:
            return self._tables.pop(name)
        except KeyError:
            raise CatalogError(f"no table named {name}")

    def table(self, name: str) -> TableInfo:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"no table named {name}")

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def tables(self) -> List[TableInfo]:
        return list(self._tables.values())

"""The ``Database`` facade: the public entry point of the engine.

Wires together the simulated disk, buffer pool, catalog, heap files and
B-link trees, and offers record-level DML (the horizontal path) plus
hooks the bulk-delete executors build on.

The single ``memory_bytes`` budget plays the role of the paper's "main
memory" knob (Experiment 4): it sizes the buffer pool, and the same
figure is handed to external sorts as their workspace — matching the
paper's note that the prototype uses its memory "not only for caching
but also to carry out sorting".
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.btree.tree import BLinkTree
from repro.catalog.catalog import Catalog, IndexInfo, IndexState, TableInfo
from repro.catalog.composite import CompositeKeyCodec
from repro.catalog.schema import Attribute, DataType, TableSchema
from repro.errors import CatalogError, IndexOfflineError, UniqueViolationError
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskParameters, SimClock, SimulatedDisk
from repro.storage.heap import HeapFile
from repro.storage.rid import RID

DEFAULT_MEMORY_BYTES = 10 * 1024 * 1024


class Database:
    """An embedded, single-process relational engine instance."""

    def __init__(
        self,
        page_size: int = 4096,
        memory_bytes: int = DEFAULT_MEMORY_BYTES,
        disk_parameters: Optional[DiskParameters] = None,
    ) -> None:
        self.disk = SimulatedDisk(page_size=page_size, parameters=disk_parameters)
        self.pool = BufferPool.with_byte_budget(self.disk, memory_bytes)
        self.memory_bytes = memory_bytes
        self.catalog = Catalog()
        #: Attached :class:`repro.obs.observer.Observer`, or ``None``
        #: (the default: no tracing, no metrics, no overhead).  Use
        #: :meth:`observe` / ``repro.obs.observed(db)`` to manage it.
        self.obs: Optional[object] = None

    @property
    def clock(self) -> SimClock:
        return self.disk.clock

    @property
    def page_size(self) -> int:
        return self.disk.page_size

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def create_table(
        self,
        schema: TableSchema,
        engine: str = "heap",
        key_column: Optional[str] = None,
        lsm_config: Optional[object] = None,
    ) -> TableInfo:
        """Create a table on the chosen storage engine.

        ``engine="heap"`` (the default) is the paper's heap + B-link
        path.  ``engine="lsm"`` keys the rows by ``key_column`` (an INT
        column; defaults to the schema's first column) and stores them
        in a delete-aware :class:`~repro.lsm.tree.LsmTree`;
        ``lsm_config`` tunes it.  See ``docs/storage_engines.md``.
        """
        from repro.storage.engine import ENGINE_NAMES, HEAP_BTREE, LSM

        if engine not in ENGINE_NAMES:
            raise CatalogError(
                f"unknown storage engine {engine!r}; "
                f"choose from {sorted(ENGINE_NAMES)}"
            )
        if engine == HEAP_BTREE and (
            key_column is not None or lsm_config is not None
        ):
            raise CatalogError(
                "key_column/lsm_config only apply to engine='lsm'"
            )
        heap = HeapFile(self.pool, name=schema.name)
        table = TableInfo(schema, heap)
        if engine == LSM:
            from repro.lsm.tree import LsmConfig, LsmTree

            column = key_column or schema.attributes[0].name
            if schema.attribute(column).data_type is not DataType.INT:
                raise CatalogError(
                    f"LSM key column {column} must be INT"
                )
            if lsm_config is not None and not isinstance(
                lsm_config, LsmConfig
            ):
                raise CatalogError("lsm_config must be an LsmConfig")
            table.engine = LSM
            table.lsm = LsmTree(
                self.pool, name=schema.name, config=lsm_config
            )
            table.lsm_key_column = column
        self.catalog.add_table(table)
        return table

    def create_sharded_table(
        self,
        schema: TableSchema,
        shard_column: str,
        bounds: Sequence[int],
    ) -> TableInfo:
        """Create a range-sharded table: a logical entry plus one
        physical table per key range.

        ``bounds`` are the strictly increasing interior split points on
        ``shard_column`` (``len(bounds) + 1`` shards, open outer ends;
        a key on a bound belongs to the upper shard).  Rows live only
        in the physical shards (``{name}::s{i}``); the logical entry
        carries the map and routes DML.
        """
        from repro.shard.map import ShardMap

        if not schema.has_column(shard_column):
            raise CatalogError(
                f"table {schema.name} has no shard column {shard_column}"
            )
        if schema.attribute(shard_column).data_type is not DataType.INT:
            raise CatalogError(
                f"shard column {shard_column} must be INT"
            )
        shard_map = ShardMap(column=shard_column, bounds=tuple(bounds))
        table = self.create_table(schema)
        table.shard_map = shard_map
        for shard_id in range(shard_map.shard_count):
            shard_schema = TableSchema.of(
                f"{schema.name}::s{shard_id}", list(schema.attributes)
            )
            table.shards.append(self.create_table(shard_schema))
        return table

    def create_sharded_index(
        self,
        table_name: str,
        column: str,
        unique: bool = False,
        clustered: bool = False,
        max_leaf_entries: Optional[int] = None,
        max_inner_entries: Optional[int] = None,
        build_method: str = "bulk",
    ) -> List[IndexInfo]:
        """Create one index per shard of a sharded table.

        Each shard gets its own B-link tree over its own rows — the
        per-shard structures a shard-local bulk delete sweeps without
        touching any other shard.
        """
        table = self.catalog.table(table_name)
        if not table.is_sharded:
            raise CatalogError(
                f"table {table_name} is not sharded; use create_index"
            )
        return [
            self.create_index(
                shard.name, column, unique=unique, clustered=clustered,
                max_leaf_entries=max_leaf_entries,
                max_inner_entries=max_inner_entries,
                build_method=build_method,
            )
            for shard in table.shards
        ]

    def drop_table(self, name: str) -> None:
        table = self.catalog.drop_table(name)
        for shard in table.shards:
            self.drop_table(shard.name)
        for index in list(table.indexes.values()):
            self._drop_structure(index)
        if table.lsm is not None:
            table.lsm.drop()
        table.heap.drop()

    @staticmethod
    def _drop_structure(index: IndexInfo) -> None:
        if index.is_btree:
            index.tree.drop()
        else:
            index.hash_index.drop()

    def create_index(
        self,
        table_name: str,
        column: str,
        name: Optional[str] = None,
        unique: bool = False,
        clustered: bool = False,
        max_leaf_entries: Optional[int] = None,
        max_inner_entries: Optional[int] = None,
        build_method: str = "bulk",
        columns: Optional[Sequence[str]] = None,
        codec: Optional["CompositeKeyCodec"] = None,
    ) -> IndexInfo:
        """Create a B-link index and populate it from the table.

        ``build_method="bulk"`` scans the heap once, sorts the
        ``(key, RID)`` pairs, and bulk-loads the tree bottom-up — the
        efficient CREATE INDEX of a commercial system.
        ``build_method="insert"`` inserts entry-at-a-time in heap-scan
        order instead, which is what the paper's prototype apparently
        did ("creating indices is slower in our prototype than in the
        commercial database system") and what makes its ``drop &
        create`` baseline lose even to the traditional plans in
        Figure 8.
        """
        if build_method not in ("bulk", "insert"):
            raise CatalogError(f"unknown index build method {build_method!r}")
        table = self.catalog.table(table_name)
        if table.lsm is not None:
            raise CatalogError(
                f"table {table_name} is LSM-backed: its runs' fence keys "
                "already index the key column, and secondary indexes "
                "are unsupported (see docs/storage_engines.md)"
            )
        if table.is_sharded:
            raise CatalogError(
                f"table {table_name} is sharded; use create_sharded_index "
                "so every shard gets its own structure"
            )
        index_name = name or f"I_{table_name}_{column}"
        tree = BLinkTree(
            self.pool,
            name=index_name,
            unique=unique,
            max_leaf_entries=max_leaf_entries,
            max_inner_entries=max_inner_entries,
        )
        index = IndexInfo(
            name=index_name,
            table_name=table_name,
            column=column,
            tree=tree,
            unique=unique,
            clustered=clustered,
            columns=tuple(columns) if columns else (),
            codec=codec,
        )
        if build_method == "insert":
            for rid, payload in table.heap.scan():
                values = table.serializer.unpack(payload)
                self.disk.charge_cpu_records(1, factor=2.0)
                tree.insert(index.key_for(values, table.schema), rid.pack())
        else:
            entries: List[Tuple[int, int]] = []
            for rid, payload in table.heap.scan():
                values = table.serializer.unpack(payload)
                entries.append(
                    (index.key_for(values, table.schema), rid.pack())
                )
            entries.sort()
            self.disk.charge_cpu_records(len(entries), factor=4.0)  # sort
            tree.bulk_load(entries)
        table.add_index(index)
        return index

    def create_hash_index(
        self,
        table_name: str,
        column: str,
        name: Optional[str] = None,
        unique: bool = False,
        bucket_count: Optional[int] = None,
    ) -> IndexInfo:
        """Create a page-based hash index and populate it from the table.

        Hash indexes do not participate in vertical bulk deletes — the
        executors update them record-at-a-time, the behaviour the
        paper's §5 describes for its prototype's non-B-tree indexes.
        """
        from repro.hashindex import HashIndex

        table = self.catalog.table(table_name)
        if table.lsm is not None:
            raise CatalogError(
                f"table {table_name} is LSM-backed; secondary indexes "
                "are unsupported (see docs/storage_engines.md)"
            )
        index_name = name or f"H_{table_name}_{column}"
        if bucket_count is not None:
            hash_index = HashIndex(
                self.pool, name=index_name,
                bucket_count=bucket_count, unique=unique,
            )
        else:
            hash_index = HashIndex.sized_for(
                self.pool, max(1, table.record_count),
                name=index_name, unique=unique,
            )
        index = IndexInfo(
            name=index_name,
            table_name=table_name,
            column=column,
            kind="hash",
            hash_index=hash_index,
            unique=unique,
        )
        for rid, payload in table.heap.scan():
            values = table.serializer.unpack(payload)
            self.disk.charge_cpu_records(1)
            hash_index.insert(index.key_for(values, table.schema), rid.pack())
        table.add_index(index)
        return index

    def drop_index(self, table_name: str, index_name: str) -> None:
        table = self.catalog.table(table_name)
        index = table.drop_index(index_name)
        self._drop_structure(index)

    # ------------------------------------------------------------------
    # record-level DML (the horizontal path)
    # ------------------------------------------------------------------
    def insert(
        self, table_name: str, values: Sequence[object]
    ) -> Optional[RID]:
        """Insert one record and maintain every index immediately.

        Against a sharded table the row routes to the shard covering
        its shard-column value (routing is pure arithmetic: the only
        simulated cost is the shard-local insert itself).  Against an
        LSM table the row upserts by its key column and the return
        value is ``None`` — LSM rows have no stable RID.
        """
        table = self.catalog.table(table_name)
        if table.lsm is not None:
            assert table.lsm_key_column is not None
            key = table.key_of(tuple(values), table.lsm_key_column)
            table.lsm.observer = self.obs
            table.lsm.put(key, table.serializer.pack(values))
            return None
        if table.is_sharded:
            assert table.shard_map is not None
            key = table.key_of(tuple(values), table.shard_map.column)
            shard = table.shard(table.shard_map.shard_of(key))
            return self.insert(shard.name, values)
        payload = table.serializer.pack(values)
        # Fail before touching storage: every index must be on-line and
        # every unique constraint satisfied, or nothing happens at all.
        for index in table.indexes.values():
            self._require_online(index)
        for index in table.indexes.values():
            if index.unique:
                key = index.key_for(tuple(values), table.schema)
                if index.structure_contains(key):
                    raise UniqueViolationError(
                        f"duplicate key {key} for unique index {index.name}"
                    )
        rid = table.heap.insert(payload)
        for index in table.indexes.values():
            key = index.key_for(tuple(values), table.schema)
            index.structure_insert(key, rid.pack())
        return rid

    def load_table(
        self, table_name: str, rows: Iterable[Sequence[object]]
    ) -> int:
        """Append rows without index maintenance (call before
        ``create_index`` for bulk setup); returns the number loaded.

        A sharded table routes each row to its covering shard, then
        appends shard-locally in arrival order — one pure-Python
        partition pass, no extra simulated I/O over the unsharded
        load of the same rows.  An LSM table bulk-loads straight into
        level-1 runs (no log traffic, one manifest commit)."""
        table = self.catalog.table(table_name)
        if table.lsm is not None:
            assert table.lsm_key_column is not None
            key_column = table.lsm_key_column
            table.lsm.observer = self.obs
            return table.lsm.bulk_load(
                (
                    table.key_of(tuple(values), key_column),
                    table.serializer.pack(values),
                )
                for values in rows
            )
        if table.is_sharded:
            assert table.shard_map is not None
            shard_map = table.shard_map
            routed: List[List[Sequence[object]]] = [
                [] for _ in range(shard_map.shard_count)
            ]
            for values in rows:
                key = table.key_of(tuple(values), shard_map.column)
                routed[shard_map.shard_of(key)].append(values)
            return sum(
                self.load_table(shard.name, shard_rows)
                for shard, shard_rows in zip(table.shards, routed)
            )
        if table.indexes:
            raise CatalogError(
                "load_table must run before indexes exist; use insert()"
            )
        count = 0
        for values in rows:
            table.heap.append(table.serializer.pack(values))
            count += 1
        return count

    def read(self, table_name: str, rid: RID) -> Tuple[object, ...]:
        table = self.catalog.table(table_name)
        return table.serializer.unpack(table.heap.read(rid))

    def delete_record(self, table_name: str, rid: RID) -> Tuple[object, ...]:
        """Delete one record the traditional way: the record leaves the
        heap and *every* index immediately (horizontal processing).

        The heap page is read *cold*: random single-record accesses must
        not flush the index pages the next deletes will need."""
        table = self.catalog.table(table_name)
        if table.lsm is not None:
            raise CatalogError(
                f"table {table_name} is LSM-backed and has no RIDs; "
                "delete by key via repro.lsm.lsm_bulk_delete"
            )
        if table.is_sharded:
            raise CatalogError(
                f"table {table_name} is sharded and a RID does not name "
                "a shard; delete against the physical shard table"
            )
        payload = table.heap.delete(rid, cold=True)
        values = table.serializer.unpack(payload)
        for index in table.indexes.values():
            self._require_online(index)
            key = index.key_for(values, table.schema)
            index.structure_delete(key, rid.pack())
        return values

    def scan(self, table_name: str):
        """Yield ``(rid, values)`` for every record, in physical order.

        A sharded table chains its shards in range order; RIDs are
        shard-local (two shards may yield the same RID for different
        rows).  An LSM table yields ``(key, values)`` in key order —
        the key plays the RID's role."""
        table = self.catalog.table(table_name)
        if table.lsm is not None:
            table.lsm.observer = self.obs
            for key, payload in table.lsm.scan():
                yield key, table.serializer.unpack(payload)
            return
        if table.is_sharded:
            for shard in table.shards:
                for rid, values in self.scan(shard.name):
                    yield rid, values
            return
        for rid, payload in table.heap.scan():
            yield rid, table.serializer.unpack(payload)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def table(self, name: str) -> TableInfo:
        return self.catalog.table(name)

    @staticmethod
    def _require_online(index: IndexInfo) -> None:
        if not index.is_online:
            raise IndexOfflineError(
                f"index {index.name} is off-line; route the update through "
                "a side-file or direct propagation (repro.txn)"
            )

    def vacuum(self, table_name: str) -> Dict[str, int]:
        """Reclaim space after heavy deletes (an offline maintenance op).

        Frees fully empty heap pages, compacts partially empty ones,
        merges under-full B-tree leaves (the merge-at-half pass of [8],
        optional precisely because free-at-empty leaves structures
        sparse), and flushes.  Returns counters per action.
        """
        from repro.btree.maintenance import merge_underfull_leaves
        from repro.storage.page_formats import SlottedPage

        table = self.catalog.table(table_name)
        if table.lsm is not None:
            table.lsm.observer = self.obs
            compactions = table.lsm.compact_all()
            self.flush()
            return {
                "lsm_compactions": compactions,
                "lsm_data_pages": table.lsm.data_pages,
            }
        report = {
            "heap_pages_freed": table.heap.reclaim_empty_pages(),
            "heap_pages_compacted": 0,
            "leaves_merged": 0,
        }
        for page_id in table.heap.page_ids:
            with self.pool.pin(page_id) as pinned:
                page = SlottedPage(pinned.data)
                if page.potential_free_space() > page.free_space():
                    page.compact()
                    pinned.mark_dirty()
                    report["heap_pages_compacted"] += 1
                table.heap.fsm.record(page_id, page.potential_free_space())
        for index in table.indexes.values():
            if index.is_btree:
                report["leaves_merged"] += merge_underfull_leaves(index.tree)
        self.flush()
        return report

    def observe(self) -> object:
        """Attach and return a fresh observer (``repro.obs``).

        Tracing stays on until :meth:`unobserve`; prefer the
        ``repro.obs.observed(db)`` context manager for scoped use.
        """
        from repro.obs.observer import Observer

        return Observer.attach(self)

    def unobserve(self) -> Optional[object]:
        """Detach and return the current observer, if any."""
        from repro.obs.observer import Observer

        return Observer.detach(self)

    def flush(self) -> None:
        """Write every dirty buffered page back to the simulated disk."""
        self.pool.flush_all()

    def io_report(self) -> str:
        """One-line summary of disk and buffer statistics."""
        d, b = self.disk.stats, self.pool.stats
        return (
            f"io: {d.reads}r/{d.writes}w ({d.random_ios} random), "
            f"buffer hit ratio {b.hit_ratio:.2%}, "
            f"sim time {self.clock.now_seconds:.2f}s"
        )

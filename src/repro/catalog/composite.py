"""Composite keys for compound indexes.

The paper (§2.2): "Compound indices on several attributes can be
treated just like indices on a single attribute."  This codec makes
that literal: the values of the indexed columns are packed into one
64-bit integer whose numeric order equals the lexicographic order of
the column tuple, so every B-tree and every ``bd`` operator works on
compound indexes completely unchanged.

Each column is assigned a bit width; widths must sum to <= 63 (the key
stays a non-negative signed 64-bit value).  Values must fit their
width and be non-negative — range violations raise ``SchemaError`` at
insert time rather than silently corrupting key order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import SchemaError

MAX_TOTAL_BITS = 63


@dataclass(frozen=True)
class CompositeKeyCodec:
    """Packs/unpacks column tuples into order-preserving int64 keys."""

    widths: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.widths:
            raise SchemaError("composite key needs at least one column")
        if any(w < 1 for w in self.widths):
            raise SchemaError("composite column widths must be >= 1 bit")
        if sum(self.widths) > MAX_TOTAL_BITS:
            raise SchemaError(
                f"composite key widths sum to {sum(self.widths)} bits; "
                f"at most {MAX_TOTAL_BITS} fit into one key"
            )

    @classmethod
    def of(cls, *widths: int) -> "CompositeKeyCodec":
        return cls(tuple(widths))

    @property
    def column_count(self) -> int:
        return len(self.widths)

    def pack(self, values: Sequence[int]) -> int:
        """Combine column values into one order-preserving key."""
        if len(values) != len(self.widths):
            raise SchemaError(
                f"composite key expects {len(self.widths)} values, "
                f"got {len(values)}"
            )
        key = 0
        for value, width in zip(values, self.widths):
            if not isinstance(value, int) or isinstance(value, bool):
                raise SchemaError(
                    f"composite key component must be an int, got {value!r}"
                )
            if not 0 <= value < (1 << width):
                raise SchemaError(
                    f"value {value} does not fit {width} bits"
                )
            key = (key << width) | value
        return key

    def unpack(self, key: int) -> Tuple[int, ...]:
        """Recover the column values from a packed key."""
        if key < 0:
            raise SchemaError("composite keys are non-negative")
        out: List[int] = []
        for width in reversed(self.widths):
            out.append(key & ((1 << width) - 1))
            key >>= width
        if key:
            raise SchemaError("key has more bits than the codec's widths")
        return tuple(reversed(out))

    def prefix_range(self, prefix: Sequence[int]) -> Tuple[int, int]:
        """Key range ``[lo, hi]`` covering every key with ``prefix``.

        Enables prefix scans on compound indexes (e.g. all entries for
        one ``(ship_year,)`` of a ``(ship_year, store)`` index).
        """
        if not 0 < len(prefix) <= len(self.widths):
            raise SchemaError("prefix length out of range")
        rest = self.widths[len(prefix):]
        rest_bits = sum(rest)
        head = 0
        for value, width in zip(prefix, self.widths):
            if not 0 <= value < (1 << width):
                raise SchemaError(f"value {value} does not fit {width} bits")
            head = (head << width) | value
        lo = head << rest_bits
        hi = lo | ((1 << rest_bits) - 1) if rest_bits else lo
        return lo, hi

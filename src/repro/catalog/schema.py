"""Table schemas: attribute names, types, and lookup helpers."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import CatalogError, SchemaError


class DataType(enum.Enum):
    """Supported column types: 64-bit integers and fixed-width strings."""

    INT = "int"
    CHAR = "char"


@dataclass(frozen=True)
class Attribute:
    """One column of a table."""

    name: str
    data_type: DataType
    length: int = 0  # byte width for CHAR columns; unused for INT

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if self.data_type is DataType.CHAR and self.length <= 0:
            raise SchemaError(f"CHAR attribute {self.name} needs a length")
        if self.data_type is DataType.INT and self.length:
            raise SchemaError(f"INT attribute {self.name} takes no length")

    @classmethod
    def int_(cls, name: str) -> "Attribute":
        return cls(name, DataType.INT)

    @classmethod
    def char(cls, name: str, length: int) -> "Attribute":
        return cls(name, DataType.CHAR, length)


@dataclass(frozen=True)
class TableSchema:
    """An ordered list of attributes with unique names."""

    name: str
    attributes: Tuple[Attribute, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("table name must be non-empty")
        if not self.attributes:
            raise SchemaError(f"table {self.name} needs at least one column")
        seen = set()
        for attr in self.attributes:
            if attr.name in seen:
                raise SchemaError(
                    f"duplicate column {attr.name} in table {self.name}"
                )
            seen.add(attr.name)

    @classmethod
    def of(cls, name: str, attributes: Sequence[Attribute]) -> "TableSchema":
        return cls(name, tuple(attributes))

    def column_index(self, column: str) -> int:
        for i, attr in enumerate(self.attributes):
            if attr.name == column:
                return i
        raise CatalogError(f"table {self.name} has no column {column}")

    def attribute(self, column: str) -> Attribute:
        return self.attributes[self.column_index(column)]

    def has_column(self, column: str) -> bool:
        return any(attr.name == column for attr in self.attributes)

    @property
    def column_names(self) -> List[str]:
        return [attr.name for attr in self.attributes]

"""Catalog: schemas, table/index metadata, and the Database facade."""

from repro.catalog.catalog import Catalog, IndexInfo, IndexState, TableInfo
from repro.catalog.composite import CompositeKeyCodec
from repro.catalog.statistics import (
    IndexStatistics,
    TableStatistics,
    collect_exact_table_statistics,
    collect_statistics,
    collect_table_statistics,
)
from repro.catalog.database import Database
from repro.catalog.schema import Attribute, DataType, TableSchema

__all__ = [
    "Attribute",
    "Catalog",
    "CompositeKeyCodec",
    "IndexStatistics",
    "TableStatistics",
    "collect_exact_table_statistics",
    "collect_statistics",
    "collect_table_statistics",
    "Database",
    "DataType",
    "IndexInfo",
    "IndexState",
    "TableInfo",
    "TableSchema",
]

"""Catalog statistics for the planner.

The paper's optimizer discussion: the ``bd`` choices are made
"depending on the size of the table/index, the number of records to be
deleted, and the size of the main memory buffer pool".  This module
snapshots exactly those quantities so cost formulas read from a stats
object instead of poking live storage structures (and so tests can
construct hypothetical situations for the planner).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.catalog.catalog import TableInfo
from repro.catalog.database import Database


@dataclass(frozen=True)
class IndexStatistics:
    """Size and shape of one index."""

    name: str
    column: str
    entry_count: int
    leaf_pages: int
    height: int
    unique: bool
    clustered: bool

    @property
    def entries_per_leaf(self) -> float:
        return self.entry_count / self.leaf_pages if self.leaf_pages else 0.0


@dataclass(frozen=True)
class TableStatistics:
    """Size and shape of one table and its indexes."""

    name: str
    record_count: int
    heap_pages: int
    indexes: Dict[str, IndexStatistics] = field(default_factory=dict)

    @property
    def records_per_page(self) -> float:
        return self.record_count / self.heap_pages if self.heap_pages else 0.0

    def total_leaf_pages(self) -> int:
        return sum(ix.leaf_pages for ix in self.indexes.values())

    def selectivity(self, n_deletes: int) -> float:
        """Fraction of the table a delete list of ``n_deletes`` covers."""
        if self.record_count == 0:
            return 0.0
        return min(1.0, n_deletes / self.record_count)


def collect_table_statistics(table: TableInfo) -> TableStatistics:
    """Snapshot one table, I/O-free.

    Leaf-page counts are *estimated* from entry counts and node
    capacities — which is what a planner must use (walking every leaf
    chain to plan a statement would charge more I/O than some
    statements cost).  The two collectors are separate functions, not
    an ``exact=`` flag, so the effect engine can verify statically that
    planner estimation paths never reach page I/O
    (``effect/planner-estimates-pure`` in ``docs/static_analysis.md``).
    """
    indexes = {}
    for ix in table.indexes.values():
        if not ix.is_btree:
            hash_index = ix.hash_index
            indexes[ix.name] = IndexStatistics(
                name=ix.name,
                column=ix.column,
                entry_count=hash_index.entry_count,
                leaf_pages=hash_index.bucket_count,
                height=1,
                unique=ix.unique,
                clustered=False,
            )
            continue
        per_leaf = max(1, int(ix.tree.leaf_capacity * 0.9))
        leaf_pages = max(1, -(-ix.tree.entry_count // per_leaf))
        indexes[ix.name] = IndexStatistics(
            name=ix.name,
            column=ix.column,
            entry_count=ix.tree.entry_count,
            leaf_pages=leaf_pages,
            height=ix.tree.height,
            unique=ix.unique,
            clustered=ix.clustered,
        )
    return TableStatistics(
        name=table.name,
        record_count=table.record_count,
        heap_pages=table.heap.page_count,
        indexes=indexes,
    )


def collect_exact_table_statistics(table: TableInfo) -> TableStatistics:
    """ANALYZE-style snapshot: walk the leaf chains for exact counts.

    Pays real (simulated) I/O; for tests and reports, never for
    planning.
    """
    estimated = collect_table_statistics(table)
    indexes = {}
    for ix in table.indexes.values():
        base = estimated.indexes[ix.name]
        if not ix.is_btree:
            leaf_pages = ix.hash_index.page_count()
        else:
            leaf_pages = ix.tree.leaf_count()
        indexes[ix.name] = IndexStatistics(
            name=base.name,
            column=base.column,
            entry_count=base.entry_count,
            leaf_pages=leaf_pages,
            height=base.height,
            unique=base.unique,
            clustered=base.clustered,
        )
    return TableStatistics(
        name=estimated.name,
        record_count=estimated.record_count,
        heap_pages=estimated.heap_pages,
        indexes=indexes,
    )


def collect_statistics(
    db: Database, exact: bool = False
) -> Dict[str, TableStatistics]:
    """Snapshot every table of the database."""
    collect = (
        collect_exact_table_statistics if exact
        else collect_table_statistics
    )
    return {
        table.name: collect(table) for table in db.catalog.tables()
    }

"""repro — reproduction of "Efficient Bulk Deletes in Relational Databases".

The public API re-exports the pieces a downstream user needs:

* :class:`Database` — the embedded engine (simulated disk, buffer pool,
  catalog, heap files, B-link trees),
* schema helpers (:class:`TableSchema`, :class:`Attribute`),
* :func:`bulk_delete` — the paper's vertical, set-oriented bulk delete,
* the baselines (:func:`traditional_delete`, :func:`drop_create_delete`),
* the planner (:func:`choose_plan`) and plan/option/result types,
* the static plan linter (:func:`lint_plan` / :func:`validate_plan`)
  from :mod:`repro.analysis`.
"""

from repro.catalog.database import Database
from repro.catalog.schema import Attribute, DataType, TableSchema
from repro.core.bulk_update import (
    BulkUpdateResult,
    bulk_update,
    traditional_update,
)
from repro.core.drop_create import DropCreateResult, drop_create_delete
from repro.core.integrity import (
    ConstraintRegistry,
    OnDelete,
    bulk_delete_with_integrity,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.plan_lint import lint_plan
from repro.core.executor import (
    BulkDeleteOptions,
    BulkDeleteResult,
    bulk_delete,
    execute_plan,
    validate_plan,
)
from repro.core.planner import choose_plan
from repro.core.plans import BdMethod, BdPredicate, BulkDeletePlan
from repro.core.traditional import TraditionalResult, traditional_delete
from repro.hashindex import HashIndex
from repro.storage.rid import RID

__version__ = "1.0.0"

__all__ = [
    "Attribute",
    "BdMethod",
    "BdPredicate",
    "BulkDeleteOptions",
    "BulkUpdateResult",
    "ConstraintRegistry",
    "OnDelete",
    "BulkDeletePlan",
    "BulkDeleteResult",
    "Database",
    "Finding",
    "HashIndex",
    "Severity",
    "DataType",
    "DropCreateResult",
    "RID",
    "TableSchema",
    "TraditionalResult",
    "bulk_delete",
    "bulk_delete_with_integrity",
    "bulk_update",
    "choose_plan",
    "drop_create_delete",
    "execute_plan",
    "lint_plan",
    "traditional_delete",
    "traditional_update",
    "validate_plan",
]

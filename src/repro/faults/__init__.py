"""Systematic fault injection for the recovery path.

The paper's §3.2 recovery story — roll *forward* to completion after a
failure — is only as good as the set of failure points it was tested
against.  This package replaces hand-picked crash points with a
*fault plan* executed by a :class:`FaultInjector` that hooks the three
layers where durability actually happens:

* :class:`~repro.recovery.wal.WriteAheadLog` — every forced append is a
  *durable event*; the injector can crash right after one, drop the
  record (the force never completed), or leave a torn tail record,
* :class:`~repro.storage.disk.SimulatedDisk` — every page write is a
  durable event; the injector can crash after one or tear it (half new
  image, half old),
* :class:`~repro.storage.buffer.BufferPool` — every crash drops the
  unflushed buffer contents, exactly like a power failure.

On top of the injector, :func:`crash_point_sweep` runs a recoverable
bulk delete once to count its durable events, then re-runs it with a
crash injected after *every* k-th event (and again with a second crash
during recovery), asserting each time that the recovered database is
equivalent to the no-crash oracle.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    LATENT,
    READ_FAULT_KINDS,
    STUCK,
    TRANSIENT,
    FaultPlan,
    SimulatedCrash,
)

# The sweep driver imports repro.recovery (which imports this package
# for SimulatedCrash); resolve it lazily to keep the import graph
# acyclic.
_SWEEP_NAMES = (
    "SweepReport",
    "SweepScenario",
    "capture_state",
    "crash_point_sweep",
    "integrity_problems",
)


def __getattr__(name: str):
    if name in _SWEEP_NAMES:
        from repro.faults import sweep

        return getattr(sweep, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "FaultInjector",
    "FaultPlan",
    "LATENT",
    "READ_FAULT_KINDS",
    "STUCK",
    "SimulatedCrash",
    "TRANSIENT",
    "SweepReport",
    "SweepScenario",
    "capture_state",
    "crash_point_sweep",
    "integrity_problems",
]

"""Exhaustive crash-point sweep over the recovery path.

The sweep turns §3.2's recovery claim into a checked property:

1. run a recoverable bulk delete **fault-free** on a deterministic
   scenario, capturing the *oracle* state (every table's rows and
   counts, every index's entries) and the number N of durable events
   the statement produced,
2. for each k in 1..N, rebuild the identical scenario, crash it right
   after durable event k, run :func:`repro.recovery.restart.recover`,
   and require the recovered database to be equivalent to the oracle
   and internally consistent (tree validation, count reconciliation,
   heap/index cross-checks, ``core.integrity`` foreign keys),
3. prove recovery is *re-entrant*: for sampled j, crash the recovery
   run itself at its j-th durable event, recover again, and require the
   same equivalence.

Scenario builds are deterministic (seeded RNG, simulated clock), so
durable-event k always lands on the same write — a failing point is
exactly reproducible with
``FaultPlan(crash_after_event=k)`` on a fresh build.

If the statement verifiably never started (its ``bulk_begin`` was the
lost tail record, or recovery abandoned it before any modification),
the sweep re-issues the statement — that is the client's contract, not
a recovery failure — but only when the recovered state is bit-identical
to the pre-statement state; anything else is reported as a failure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.btree.maintenance import validate_tree
from repro.catalog.database import Database
from repro.catalog.schema import Attribute, TableSchema
from repro.core.integrity import (
    ConstraintRegistry,
    OnDelete,
    find_referencing_keys,
)
from repro.errors import ReproError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, SimulatedCrash
from repro.recovery.restart import (
    RecoverableBulkDelete,
    UserWrite,
    apply_user_write,
    recover,
)
from repro.recovery.wal import WriteAheadLog

#: ``capture_state``'s per-table value: (sorted rows, heap record
#: count, {index name: (sorted entries, entry_count)}).
TableState = Tuple[list, int, Dict[str, Tuple[list, int]]]


@dataclass(frozen=True)
class SweepScenario:
    """A deterministic workload: every ``build()`` is bit-identical.

    Table R carries the bulk delete (unique index on the driving column
    A plus one secondary per extra column); child table S references
    only *surviving* A values, so the foreign key must hold before and
    after any crash/recovery interleaving.
    """

    records: int = 48
    delete_fraction: float = 0.4
    seed: int = 7
    page_size: int = 512
    memory_pages: int = 12
    child_rows: int = 8
    index_columns: Tuple[str, ...] = ("A", "B")
    #: Lanes for the post-table index stages (1 = serial).  The lane
    #: scheduler's interleaving is seeded and fixed, so durable-event
    #: numbering stays stable and every crash point is replayable.
    lanes: int = 1
    #: Concurrent user writes (inserts of fresh rows, deletes of
    #: unreferenced survivors) committed at the statement's stage
    #: boundaries, round-robin.  0 keeps the classic traffic-free
    #: sweep bit-identical.  The zero-lost-committed-writes property
    #: is checked per point: every ``user_op`` record surviving in the
    #: WAL must have its effect present after recovery.
    traffic_ops: int = 0

    def build(self) -> "SweepCase":
        db = Database(
            page_size=self.page_size,
            memory_bytes=self.memory_pages * self.page_size,
        )
        rng = random.Random(self.seed)
        n = self.records
        if "A" not in self.index_columns:
            raise ReproError(
                "SweepScenario needs the driving column A indexed"
            )
        # One int column per indexed name (A first: it drives the
        # delete).  The default ("A", "B") draws the same two sample
        # streams the original fixed schema did, so golden sweeps are
        # unaffected; extra columns mean extra post-table index stages
        # — the parallel branches a multi-lane sweep interleaves.
        col_vals = {"A": rng.sample(range(10 * n), n)}
        for col in self.index_columns:
            if col != "A":
                col_vals[col] = rng.sample(range(10 * n), n)
        a_vals = col_vals["A"]
        db.create_table(TableSchema.of(
            "R",
            [Attribute.int_(col) for col in self.index_columns]
            + [Attribute.char("PAD", 24)],
        ))
        db.load_table(
            "R",
            list(zip(
                *[col_vals[col] for col in self.index_columns],
                ["p"] * n,
            )),
        )
        for col in self.index_columns:
            db.create_index("R", col, unique=(col == "A"))
        count = max(1, int(n * self.delete_fraction))
        keys = sorted(rng.sample(a_vals, count))
        survivors = [a for a in a_vals if a not in set(keys)]
        db.create_table(TableSchema.of(
            "S",
            [Attribute.int_("FA"), Attribute.char("PAD", 8)],
        ))
        db.load_table(
            "S",
            [
                (survivors[i % len(survivors)], "c")
                for i in range(self.child_rows)
            ],
        )
        db.create_index("S", "FA")
        registry = ConstraintRegistry(db)
        registry.add_foreign_key("S", "FA", "R", "A", OnDelete.RESTRICT)
        # The pre-statement image must be durable: a crash at the very
        # first statement event may not lose any of the build.
        db.flush()
        traffic, order = self._traffic_schedule(col_vals, keys, survivors)
        return SweepCase(
            db=db, log=WriteAheadLog(db.disk), keys=keys,
            registry=registry, traffic=traffic, traffic_order=order,
        )

    def _traffic_schedule(
        self,
        col_vals: Dict[str, List[int]],
        keys: List[int],
        survivors: List[int],
    ) -> Tuple[Dict[str, List[UserWrite]], List[UserWrite]]:
        """The deterministic user-write schedule for this scenario.

        Inserts use fresh per-column values from a range disjoint from
        the generated data (and from each other), deletes target
        survivors the child table does not reference — so the foreign
        key holds throughout and every indexed column value identifies
        at most one logical row, the precondition of replay-by-values.
        The flattened ``order`` list is in application (= WAL) order;
        a crash leaves a prefix of it committed.
        """
        if not self.traffic_ops:
            return {}, []
        boundaries = ["after_begin", "after_driving", "after_table"] + [
            f"after_index:I_R_{col}"
            for col in self.index_columns
            if col != "A"
        ]
        rng = random.Random(self.seed + 9999)
        a_vals = col_vals["A"]
        referenced = {
            survivors[i % len(survivors)] for i in range(self.child_rows)
        }
        deletable = [
            a for a in survivors if a not in referenced
        ]
        ncols = len(self.index_columns)
        fresh_base = 100 * 10 * self.records
        traffic: Dict[str, List[UserWrite]] = {b: [] for b in boundaries}
        for i in range(self.traffic_ops):
            if deletable and rng.random() < 0.4:
                target = deletable.pop(rng.randrange(len(deletable)))
                j = a_vals.index(target)
                write = UserWrite(
                    op="delete",
                    values=tuple(
                        col_vals[col][j] for col in self.index_columns
                    ) + ("p",),
                )
            else:
                base = fresh_base + i * ncols
                write = UserWrite(
                    op="insert",
                    values=tuple(base + c for c in range(ncols)) + ("u",),
                )
            traffic[boundaries[i % len(boundaries)]].append(write)
        order = [w for b in boundaries for w in traffic[b]]
        return traffic, order


@dataclass
class SweepCase:
    """One built scenario instance."""

    db: Database
    log: WriteAheadLog
    keys: List[int]
    registry: ConstraintRegistry
    #: Per-boundary user-write schedule and its flattened WAL order.
    traffic: Dict[str, List[UserWrite]] = field(default_factory=dict)
    traffic_order: List[UserWrite] = field(default_factory=list)


def capture_state(db: Database) -> Dict[str, TableState]:
    """Logical content of every table + every B-tree index."""
    state: Dict[str, TableState] = {}
    for table in db.catalog.tables():
        if table.is_sharded:
            # A sharded logical entry owns no pages of its own; its
            # physical shard tables are separate catalog entries and
            # are captured individually below.
            continue
        rows = sorted(values for _, values in db.scan(table.schema.name))
        indexes: Dict[str, Tuple[list, int]] = {}
        for name, ix in sorted(table.indexes.items()):
            if ix.is_btree:
                indexes[name] = (
                    sorted(ix.tree.items()), ix.tree.entry_count
                )
        state[table.schema.name] = (rows, table.heap.record_count, indexes)
    return state


def logical_state(state: Dict[str, TableState]) -> Dict[str, object]:
    """RID-independent view of a captured state.

    With concurrent traffic, replayed or topped-up inserts may land at
    different RIDs than the oracle's (slot reuse after a crash), so
    traffic sweeps compare rows, counts and index *key* multisets —
    everything logical — instead of exact (key, RID) entries.
    """
    return {
        name: (
            rows,
            count,
            {
                ix: (sorted(k for k, _ in entries), n)
                for ix, (entries, n) in indexes.items()
            },
        )
        for name, (rows, count, indexes) in state.items()
    }


def lost_user_writes(db: Database, log: WriteAheadLog) -> List[str]:
    """Committed user writes whose effect is missing — must be empty.

    Every ``user_op`` record surviving in the WAL is a committed write;
    after recovery its net effect (last record per row wins) must be
    visible in the heap.
    """
    final: Dict[Tuple[str, Tuple[object, ...]], str] = {}
    for record in log.records("user_op"):
        key = (record.payload["table"], tuple(record.payload["values"]))
        final[key] = record.payload["op"]
    problems: List[str] = []
    for (table_name, values), op in final.items():
        present = any(
            row == values for _, row in db.scan(table_name)
        )
        if op == "insert" and not present:
            problems.append(
                f"lost committed user insert {values[:2]} in {table_name}"
            )
        elif op == "delete" and present:
            problems.append(
                f"resurrected user-deleted row {values[:2]} in {table_name}"
            )
    return problems


def integrity_problems(
    db: Database,
    registry: Optional[ConstraintRegistry] = None,
    deleted_keys: Optional[List[int]] = None,
    limit: int = 20,
) -> List[str]:
    """Internal-consistency violations, independent of any oracle."""
    problems: List[str] = []

    def note(message: str) -> None:
        if len(problems) < limit:
            problems.append(message)

    for table in db.catalog.tables():
        if table.is_sharded:
            # Checked shard by shard: the logical entry's empty heap
            # would otherwise be compared against the chained scan.
            continue
        table_name = table.schema.name
        actual = list(db.scan(table_name))
        if table.heap.record_count != len(actual):
            note(
                f"{table_name}: heap record_count "
                f"{table.heap.record_count} != {len(actual)} scanned rows"
            )
        expected_by_index: Dict[str, list] = {}
        for name, ix in sorted(table.indexes.items()):
            if not ix.is_btree:
                continue
            try:
                validate_tree(ix.tree)
            except ReproError as exc:
                note(f"{table_name}.{name}: structural: {exc}")
                continue
            items = list(ix.tree.items())
            if ix.tree.entry_count != len(items):
                note(
                    f"{table_name}.{name}: entry_count "
                    f"{ix.tree.entry_count} != {len(items)} entries"
                )
            expected = sorted(
                (ix.key_for(values, table.schema), rid.pack())
                for rid, values in actual
            )
            expected_by_index[name] = expected
            if sorted(items) != expected:
                note(
                    f"{table_name}.{name}: {len(items)} entries do not "
                    f"match the {len(actual)} heap rows"
                )
    if registry is not None and deleted_keys:
        for fk in registry.all_constraints():
            refs = find_referencing_keys(db, fk, deleted_keys)
            if refs:
                note(
                    f"fk {fk.child_table}.{fk.child_column}: "
                    f"{len(refs)} references to deleted parent keys"
                )
    return problems


@dataclass
class PointOutcome:
    """One crash-point run (single crash, or crash + recovery crash)."""

    event: int
    second_event: Optional[int]
    crash: Optional[str] = None
    problems: List[str] = field(default_factory=list)
    recovery_events: int = 0

    @property
    def ok(self) -> bool:
        return not self.problems


@dataclass
class SweepReport:
    """Everything a sweep did and found."""

    durable_events: int = 0
    points: List[int] = field(default_factory=list)
    outcomes: List[PointOutcome] = field(default_factory=list)

    @property
    def failures(self) -> List[PointOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        single = [o for o in self.outcomes if o.second_event is None]
        double = [o for o in self.outcomes if o.second_event is not None]
        lines = [
            f"durable events: {self.durable_events}; crash points swept: "
            f"{len(single)}; double-crash runs: {len(double)}; "
            f"failures: {len(self.failures)}"
        ]
        for outcome in self.failures[:10]:
            where = f"event {outcome.event}"
            if outcome.second_event is not None:
                where += f" + recovery event {outcome.second_event}"
            lines.append(f"  FAIL at {where}: {outcome.problems[0]}")
        return "\n".join(lines)


def crash_point_sweep(
    scenario: Optional[SweepScenario] = None,
    max_points: Optional[int] = None,
    double_crash: bool = True,
    double_samples: int = 2,
    torn_writes: bool = False,
    wal_tail: str = "keep",
    full_page_writes: Optional[bool] = None,
    log_fn: Optional[Callable[[str], None]] = None,
) -> SweepReport:
    """Sweep a crash over every (or ``max_points`` evenly spaced)
    durable event of the scenario's bulk delete.

    ``wal_tail`` shapes the crash when it lands on a WAL append:
    ``"keep"`` (the force completed), ``"drop"`` (it never did) or
    ``"torn"`` (a mutilated record persisted).  ``torn_writes`` does the
    analogue for page writes and implies ``full_page_writes`` so the
    torn pages are repairable.  ``double_samples`` recovery events per
    point are re-run with a second crash inside recovery
    (``double_samples <= 0`` means every recovery event).
    """
    scenario = scenario or SweepScenario()
    if full_page_writes is None:
        full_page_writes = torn_writes
    say = log_fn or (lambda message: None)

    # Pass 0: pre-statement state, oracle state, durable event count.
    case = scenario.build()
    initial = capture_state(case.db)
    counter = FaultInjector()
    RecoverableBulkDelete(
        case.db, "R", "A", case.keys, case.log,
        faults=counter, full_page_writes=full_page_writes,
        lanes=scenario.lanes, traffic=case.traffic,
    ).run()
    oracle = capture_state(case.db)
    oracle_problems = integrity_problems(case.db, case.registry, case.keys)
    if oracle_problems:
        raise ReproError(
            "fault-free oracle run is already inconsistent: "
            + "; ".join(oracle_problems)
        )
    report = SweepReport(durable_events=counter.durable_event_count)
    report.points = _choose_points(counter.durable_event_count, max_points)
    say(
        f"oracle: {counter.durable_event_count} durable events; "
        f"sweeping {len(report.points)} crash points"
        + (f" (wal_tail={wal_tail})" if wal_tail != "keep" else "")
        + (" (torn page writes)" if torn_writes else "")
    )

    for k in report.points:
        outcome = _run_point(
            scenario, k, None, torn_writes, wal_tail, full_page_writes,
            initial, oracle,
        )
        report.outcomes.append(outcome)
        if not outcome.ok:
            say(f"  event {k}: FAIL: {outcome.problems[0]}")
            continue
        if not double_crash or not outcome.recovery_events:
            continue
        samples = None if double_samples <= 0 else double_samples
        for j in _choose_points(outcome.recovery_events, samples):
            second = _run_point(
                scenario, k, j, torn_writes, wal_tail, full_page_writes,
                initial, oracle,
            )
            report.outcomes.append(second)
            if not second.ok:
                say(
                    f"  event {k} + recovery event {j}: FAIL: "
                    f"{second.problems[0]}"
                )
    return report


def _choose_points(total: int, max_points: Optional[int]) -> List[int]:
    if total <= 0:
        return []
    if max_points is None or max_points >= total:
        return list(range(1, total + 1))
    if max_points <= 0:
        return []
    return sorted({
        max(1, min(total, round(i * total / max_points)))
        for i in range(1, max_points + 1)
    })


def _run_point(
    scenario: SweepScenario,
    event: int,
    second_event: Optional[int],
    torn_writes: bool,
    wal_tail: str,
    full_page_writes: bool,
    initial: Dict[str, TableState],
    oracle: Dict[str, TableState],
) -> PointOutcome:
    case = scenario.build()

    def plan_for(k: int) -> FaultPlan:
        return FaultPlan(
            crash_after_event=k,
            torn_write=torn_writes,
            drop_wal_tail=(wal_tail == "drop"),
            torn_wal_tail=(wal_tail == "torn"),
        )

    outcome = PointOutcome(event=event, second_event=second_event)
    runner = RecoverableBulkDelete(
        case.db, "R", "A", case.keys, case.log,
        faults=FaultInjector(plan_for(event)),
        full_page_writes=full_page_writes,
        lanes=scenario.lanes, traffic=case.traffic,
    )
    try:
        runner.run()
    except SimulatedCrash as exc:
        outcome.crash = str(exc)
    if outcome.crash is None:
        outcome.problems.append(f"no crash fired at durable event {event}")
        return outcome

    if second_event is not None:
        # Crash the recovery run itself, then recover from *that*.
        try:
            recover(
                case.db, case.log,
                faults=FaultInjector(plan_for(second_event)),
                full_page_writes=full_page_writes,
            )
        except SimulatedCrash:
            pass

    counting = FaultInjector()
    rec_report = recover(
        case.db, case.log, faults=counting,
        full_page_writes=full_page_writes,
    )
    outcome.recovery_events = counting.durable_event_count
    with_traffic = bool(case.traffic_order)
    if with_traffic:
        # Zero lost committed writes: checked before the top-up, so a
        # write the top-up would re-submit cannot mask a lost one.
        outcome.problems.extend(lost_user_writes(case.db, case.log))

    def matches_oracle(state: Dict[str, TableState]) -> bool:
        if with_traffic:
            return logical_state(state) == logical_state(oracle)
        return state == oracle

    state = capture_state(case.db)
    reissued = False
    if not matches_oracle(state) and (
        rec_report.abandoned or not rec_report.resumed
    ):
        # The statement never started (its begin record was the lost
        # tail) or was abandoned before modifying anything; the client
        # re-issues it — with its full traffic schedule.  Legitimate
        # only from the pristine state.
        if state == initial:
            RecoverableBulkDelete(
                case.db, "R", "A", case.keys, case.log,
                lanes=scenario.lanes, traffic=case.traffic,
            ).run()
            state = capture_state(case.db)
            reissued = True
    if with_traffic and not reissued:
        # Writes whose commit record died with the crash were never
        # acknowledged; the client re-submits them (the oracle ran the
        # full schedule, so the comparison needs them applied).
        committed = sum(1 for _ in case.log.records("user_op"))
        for write in case.traffic_order[committed:]:
            apply_user_write(case.db, case.log, "R", write)
        case.db.flush()
        state = capture_state(case.db)
    if not matches_oracle(state):
        outcome.problems.append(
            _diff_states(oracle, state)
            if not with_traffic
            else "logical state != oracle after recovery + re-submit"
        )
    outcome.problems.extend(
        integrity_problems(case.db, case.registry, case.keys)
    )
    # Recovery must be terminal: a further restart finds nothing to do.
    if recover(case.db, case.log).resumed:
        outcome.problems.append(
            "recovery is not terminal (a further recover() resumed)"
        )
    return outcome


def _diff_states(
    oracle: Dict[str, TableState], state: Dict[str, TableState]
) -> str:
    parts: List[str] = []
    for name in sorted(set(oracle) | set(state)):
        expected, actual = oracle.get(name), state.get(name)
        if expected == actual:
            continue
        if expected is None or actual is None:
            parts.append(f"{name}: present in only one state")
            continue
        e_rows, e_count, e_ix = expected
        a_rows, a_count, a_ix = actual
        if e_rows != a_rows:
            missing = sum(1 for r in e_rows if r not in a_rows)
            extra = sum(1 for r in a_rows if r not in e_rows)
            parts.append(
                f"{name}: rows differ ({missing} missing, {extra} extra)"
            )
        if e_count != a_count:
            parts.append(f"{name}: record_count {a_count} != {e_count}")
        for ix_name in sorted(set(e_ix) | set(a_ix)):
            if e_ix.get(ix_name) != a_ix.get(ix_name):
                parts.append(f"{name}.{ix_name}: index entries differ")
    return "state != oracle: " + "; ".join(parts or ["(unlocated)"])

"""Fault plans: a declarative description of *where* to fail.

A :class:`FaultPlan` names at most one primary failure point plus the
shape the failure takes at that point.  The plan itself is inert — it
only gains teeth when handed to a
:class:`~repro.faults.injector.FaultInjector` and armed on a database.

Durable-event numbering
-----------------------

The injector assigns every durable event a 1-based ordinal in arrival
order.  A durable event is either

* a WAL append (``WriteAheadLog.append`` — the log force), or
* a simulated-disk page write (``SimulatedDisk.write_page`` — a buffer
  flush, an eviction write-back, or a spill-file write).

``crash_after_event=k`` crashes immediately after the k-th event
*commits* (the record is in the log / the bytes are on the disk).  The
modifiers below change what commits at that final event:

* ``torn_write`` — if event k is a page write, only the first half of
  the new image reaches the disk; the page is marked torn (the
  checksum-mismatch model) and must be repaired from a full-page image
  at recovery,
* ``drop_wal_tail`` — if event k is a WAL append, the force never
  completes: the record is *not* in the log after the crash,
* ``torn_wal_tail`` — if event k is a WAL append, a mutilated record
  with no payload reaches the log; restart detects and truncates it.

Named crash points (``crash_point``/``crash_mid_structure``) are kept
for targeted tests; they piggyback on the same injector so that *all*
crashes — swept or hand-picked — go through one code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ReproError


class SimulatedCrash(ReproError):
    """Raised to simulate a process crash at an injected fault point.

    Everything in the buffer pool is gone when this is raised; only the
    simulated disk and the write-ahead log survive.
    """


#: Read-fault kinds (see the ``read_fault`` field below).
TRANSIENT = "transient"
LATENT = "latent"
STUCK = "stuck"
READ_FAULT_KINDS = (TRANSIENT, LATENT, STUCK)


@dataclass(frozen=True)
class FaultPlan:
    """Where and how to fail.  Empty plan == pure event counter."""

    #: Crash immediately after the k-th durable event (1-based).
    crash_after_event: Optional[int] = None
    #: If the crash event is a page write, tear it (half new, half old).
    torn_write: bool = False
    #: If the crash event is a WAL append, the record never persists.
    drop_wal_tail: bool = False
    #: If the crash event is a WAL append, a payload-less torn record
    #: persists instead; restart truncates it.
    torn_wal_tail: bool = False
    #: Named stage point (``after_driving``, ``recovery:after_restore``,
    #: ...) — crash when execution reaches it.
    crash_point: Optional[str] = None
    #: Crash after the n-th redo record of a structure, e.g.
    #: ``("__table__", 3)`` or ``("ix_A", 1)``.
    crash_mid_structure: Optional[Tuple[str, int]] = None
    #: Read-fault kind for ``read_fault_page`` (or ``None``):
    #:
    #: * ``"transient"`` — reads of the page fail until the
    #:   ``read_recover_after``-th attempt (a recoverable glitch: the
    #:   bytes on the medium are fine; retrying with backoff heals it),
    #: * ``"latent"`` — seeded bit flips are applied *at rest* when the
    #:   injector arms (bit rot under the stored checksum); the next
    #:   verified read fails and the page must be repaired from a
    #:   full-page image,
    #: * ``"stuck"`` — the same at-rest flips, re-applied after every
    #:   commit to the page: repair writes land corrupted too, so the
    #:   media layer must give up and quarantine the page.
    read_fault: Optional[str] = None
    #: The page the read fault targets.
    read_fault_page: Optional[int] = None
    #: Transient faults succeed on this (1-based) attempt.
    read_recover_after: int = 3
    #: Seed for the (deterministic) corruption mask of latent/stuck.
    read_fault_seed: int = 0
    #: Distinct bytes the mask flips one bit in (>= 1 guarantees the
    #: corrupt image differs from the clean one).
    read_fault_bits: int = 8

    def __post_init__(self) -> None:
        if self.drop_wal_tail and self.torn_wal_tail:
            raise ValueError(
                "drop_wal_tail and torn_wal_tail are mutually exclusive"
            )
        if self.crash_after_event is not None and self.crash_after_event < 1:
            raise ValueError("crash_after_event is 1-based")
        if (self.torn_write or self.drop_wal_tail or self.torn_wal_tail) \
                and self.crash_after_event is None:
            raise ValueError(
                "torn/dropped-tail modifiers require crash_after_event"
            )
        if self.read_fault is not None:
            if self.read_fault not in READ_FAULT_KINDS:
                raise ValueError(
                    f"read_fault must be one of {READ_FAULT_KINDS}"
                )
            if self.read_fault_page is None:
                raise ValueError("read_fault requires read_fault_page")
        if self.read_recover_after < 1:
            raise ValueError("read_recover_after is 1-based")
        if self.read_fault_bits < 1:
            raise ValueError("read_fault_bits must be at least 1")

    @property
    def is_empty(self) -> bool:
        return (
            self.crash_after_event is None
            and self.crash_point is None
            and self.crash_mid_structure is None
            and self.read_fault is None
        )

    def describe(self) -> str:
        if self.read_fault is not None:
            detail = (
                f" (recovers on attempt {self.read_recover_after})"
                if self.read_fault == TRANSIENT
                else f" ({self.read_fault_bits} flipped bits)"
            )
            return (
                f"{self.read_fault} read fault on page "
                f"{self.read_fault_page}{detail}"
            )
        if self.crash_after_event is not None:
            mods = [
                name
                for name, on in (
                    ("torn_write", self.torn_write),
                    ("drop_wal_tail", self.drop_wal_tail),
                    ("torn_wal_tail", self.torn_wal_tail),
                )
                if on
            ]
            suffix = f" ({', '.join(mods)})" if mods else ""
            return f"event {self.crash_after_event}{suffix}"
        if self.crash_point is not None:
            return f"stage {self.crash_point}"
        if self.crash_mid_structure is not None:
            structure, nth = self.crash_mid_structure
            return f"redo record {nth} of {structure}"
        return "no fault"

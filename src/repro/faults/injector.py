"""The fault injector: executes a :class:`FaultPlan` against a database.

The injector is wired *into* the durability layers rather than around
them: ``SimulatedDisk.write_page`` and ``WriteAheadLog.append`` hand it
the would-be-durable data plus a ``commit`` callback, so the injector
decides exactly what survives the crash — the full write, a torn half
write, or (for a WAL force that never completed) nothing at all.  This
is the only way to model the interesting failure modes: a crash *after*
the write returns can never lose the write.

Crashing itself is centralised in :meth:`FaultInjector._crash`: drop
every unflushed buffer (``BufferPool.invalidate_all``), tell the
observer, and raise :class:`SimulatedCrash`.  The code lint forbids
raising ``SimulatedCrash`` anywhere outside this package, so every
crash a test provokes is reachable by the sweep too.
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Iterator, List, Optional, Tuple

from repro.faults.plan import FaultPlan, SimulatedCrash

#: Payload key marking a torn (partially forced) WAL record.
TORN_RECORD_KEY = "__torn__"


class FaultInjector:
    """Executes one :class:`FaultPlan`; counts durable events as it goes.

    An injector with an empty plan is a pure counter — useful for
    measuring how many durable events a statement produces (the sweep's
    first, fault-free pass) without perturbing it.
    """

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan or FaultPlan()
        #: ``(kind, detail)`` per durable event, in order.  ``kind`` is
        #: ``"wal"`` or ``"page"``; detail is the record kind / page id.
        self.durable_events: List[Tuple[str, Any]] = []
        self.crash_description: Optional[str] = None
        self.crash_count = 0
        self.torn_page_writes = 0
        self.dropped_wal_records = 0
        self.torn_wal_records = 0
        self._redo_seen: dict = {}
        self._disk: Optional[Any] = None
        self._pool: Optional[Any] = None
        self._log: Optional[Any] = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def arm(self, disk: Any, pool: Any = None, log: Any = None) -> None:
        """Attach to a disk (and optionally a pool and a WAL)."""
        if disk.fault_injector is not None and disk.fault_injector is not self:
            raise RuntimeError("another fault injector is already armed")
        if log is not None and log.fault_injector is not None \
                and log.fault_injector is not self:
            raise RuntimeError("another fault injector is armed on the log")
        self._disk = disk
        self._pool = pool
        self._log = log
        disk.fault_injector = self
        if log is not None:
            log.fault_injector = self

    def disarm(self) -> None:
        if self._disk is not None and self._disk.fault_injector is self:
            self._disk.fault_injector = None
        if self._log is not None and self._log.fault_injector is self:
            self._log.fault_injector = None
        self._disk = None
        self._pool = None
        self._log = None

    @contextlib.contextmanager
    def armed(self, disk: Any, pool: Any = None,
              log: Any = None) -> Iterator["FaultInjector"]:
        self.arm(disk, pool=pool, log=log)
        try:
            yield self
        finally:
            self.disarm()

    # ------------------------------------------------------------------
    # durability hooks (called by SimulatedDisk / WriteAheadLog)
    # ------------------------------------------------------------------
    def on_wal_append(self, record: Any, commit: Callable[[Any], None]) -> None:
        """A WAL force is about to complete.  ``commit(record)`` persists."""
        ordinal = len(self.durable_events) + 1
        crashing = self.plan.crash_after_event == ordinal
        if crashing and self.plan.drop_wal_tail:
            # The force never completed: nothing reaches the log.
            self.dropped_wal_records += 1
            self._note_event("wal", f"{record.kind} (dropped)")
            obs = self._observer()
            if obs is not None:
                obs.on_wal_tail_lost()
            self._crash(f"WAL append of {record.kind!r} lost at event "
                        f"{ordinal}")
        if crashing and self.plan.torn_wal_tail:
            # A mutilated record reaches the log; restart truncates it.
            commit(type(record)(record.lsn, record.kind,
                                {TORN_RECORD_KEY: True}))
            self.torn_wal_records += 1
            self._note_event("wal", f"{record.kind} (torn)")
            obs = self._observer()
            if obs is not None:
                obs.on_wal_tail_lost()
            self._crash(f"WAL append of {record.kind!r} torn at event "
                        f"{ordinal}")
        commit(record)
        self._note_event("wal", record.kind)
        if crashing:
            self._crash(f"after WAL append of {record.kind!r} at event "
                        f"{ordinal}")

    def on_page_write(self, page_id: int, old: bytes, new: bytes,
                      commit: Callable[[bytes], None]) -> None:
        """A page write is about to land.  ``commit(data)`` persists."""
        ordinal = len(self.durable_events) + 1
        crashing = self.plan.crash_after_event == ordinal
        if crashing and self.plan.torn_write:
            half = len(new) // 2
            commit(new[:half] + old[half:])
            assert self._disk is not None
            self._disk.torn_pages.add(page_id)
            self.torn_page_writes += 1
            self._note_event("page", f"{page_id} (torn)")
            obs = self._observer()
            if obs is not None:
                obs.on_torn_write()
            self._crash(f"torn write of page {page_id} at event {ordinal}")
        commit(new)
        self._note_event("page", page_id)
        if crashing:
            self._crash(f"after write of page {page_id} at event {ordinal}")

    # ------------------------------------------------------------------
    # named crash points (stage boundaries, n-th redo record)
    # ------------------------------------------------------------------
    def stage(self, point: str) -> None:
        """Execution reached a named stage point."""
        if self.plan.crash_point == point:
            self._crash(f"stage {point!r}")

    def redo_record(self, structure: str) -> None:
        """A logical redo record for ``structure`` was just logged."""
        target = self.plan.crash_mid_structure
        if target is None:
            return
        seen = self._redo_seen.get(structure, 0) + 1
        self._redo_seen[structure] = seen
        if structure == target[0] and seen == target[1]:
            self._crash(f"redo record {seen} of {structure!r}")

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    @property
    def durable_event_count(self) -> int:
        return len(self.durable_events)

    @property
    def crashed(self) -> bool:
        return self.crash_count > 0

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _observer(self) -> Optional[Any]:
        return None if self._disk is None else self._disk.observer

    def _note_event(self, kind: str, detail: Any) -> None:
        self.durable_events.append((kind, detail))
        obs = self._observer()
        if obs is not None:
            obs.on_fault_event(kind)

    def _crash(self, description: str) -> None:
        self.crash_description = description
        self.crash_count += 1
        if self._pool is not None:
            self._pool.invalidate_all()
        obs = self._observer()
        if obs is not None:
            obs.on_crash(description)
        raise SimulatedCrash(f"injected crash: {description}")

"""The fault injector: executes a :class:`FaultPlan` against a database.

The injector is wired *into* the durability layers rather than around
them: ``SimulatedDisk.write_page`` and ``WriteAheadLog.append`` hand it
the would-be-durable data plus a ``commit`` callback, so the injector
decides exactly what survives the crash — the full write, a torn half
write, or (for a WAL force that never completed) nothing at all.  This
is the only way to model the interesting failure modes: a crash *after*
the write returns can never lose the write.

Crashing itself is centralised in :meth:`FaultInjector._crash`: drop
every unflushed buffer (``BufferPool.invalidate_all``), tell the
observer, and raise :class:`SimulatedCrash`.  The code lint forbids
raising ``SimulatedCrash`` anywhere outside this package, so every
crash a test provokes is reachable by the sweep too.
"""

from __future__ import annotations

import contextlib
import random
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.faults.plan import LATENT, STUCK, TRANSIENT, FaultPlan, SimulatedCrash

#: Payload key marking a torn (partially forced) WAL record.
TORN_RECORD_KEY = "__torn__"


class FaultInjector:
    """Executes one :class:`FaultPlan`; counts durable events as it goes.

    An injector with an empty plan is a pure counter — useful for
    measuring how many durable events a statement produces (the sweep's
    first, fault-free pass) without perturbing it.
    """

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan or FaultPlan()
        #: ``(kind, detail)`` per durable event, in order.  ``kind`` is
        #: ``"wal"`` or ``"page"``; detail is the record kind / page id.
        self.durable_events: List[Tuple[str, Any]] = []
        self.crash_description: Optional[str] = None
        self.crash_count = 0
        self.torn_page_writes = 0
        self.dropped_wal_records = 0
        self.torn_wal_records = 0
        self.transient_read_failures = 0
        self.corruptions_applied = 0
        #: Read attempts per page (drives transient recovery-after-k).
        self.read_attempts: Dict[int, int] = {}
        self._redo_seen: dict = {}
        self._disk: Optional[Any] = None
        self._pool: Optional[Any] = None
        self._log: Optional[Any] = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def arm(self, disk: Any, pool: Any = None, log: Any = None) -> None:
        """Attach to a disk (and optionally a pool and a WAL)."""
        if disk.fault_injector is not None and disk.fault_injector is not self:
            raise RuntimeError("another fault injector is already armed")
        if log is not None and log.fault_injector is not None \
                and log.fault_injector is not self:
            raise RuntimeError("another fault injector is armed on the log")
        self._disk = disk
        self._pool = pool
        self._log = log
        disk.fault_injector = self
        if log is not None:
            log.fault_injector = self
        plan = self.plan
        if (
            plan.read_fault in (LATENT, STUCK)
            and plan.read_fault_page is not None
            and self.corruptions_applied == 0
            and disk.page_exists(plan.read_fault_page)
        ):
            # At-rest corruption: the bytes decay *under* the stored
            # checksum (corrupt_page never restamps), silently — the
            # damage is only observable through a verified read.
            disk.corrupt_page(
                plan.read_fault_page,
                self._corrupt_image(
                    disk.durable_image(plan.read_fault_page)
                ),
            )
            self.corruptions_applied += 1

    def disarm(self) -> None:
        if self._disk is not None and self._disk.fault_injector is self:
            self._disk.fault_injector = None
        if self._log is not None and self._log.fault_injector is self:
            self._log.fault_injector = None
        self._disk = None
        self._pool = None
        self._log = None

    @contextlib.contextmanager
    def armed(self, disk: Any, pool: Any = None,
              log: Any = None) -> Iterator["FaultInjector"]:
        self.arm(disk, pool=pool, log=log)
        try:
            yield self
        finally:
            self.disarm()

    # ------------------------------------------------------------------
    # durability hooks (called by SimulatedDisk / WriteAheadLog)
    # ------------------------------------------------------------------
    def on_wal_append(self, record: Any, commit: Callable[[Any], None]) -> None:
        """A WAL force is about to complete.  ``commit(record)`` persists."""
        ordinal = len(self.durable_events) + 1
        crashing = self.plan.crash_after_event == ordinal
        if crashing and self.plan.drop_wal_tail:
            # The force never completed: nothing reaches the log.
            self.dropped_wal_records += 1
            self._note_event("wal", f"{record.kind} (dropped)")
            obs = self._observer()
            if obs is not None:
                obs.on_wal_tail_lost()
            self._crash(f"WAL append of {record.kind!r} lost at event "
                        f"{ordinal}")
        if crashing and self.plan.torn_wal_tail:
            # A mutilated record reaches the log; restart truncates it.
            commit(type(record)(record.lsn, record.kind,
                                {TORN_RECORD_KEY: True}))
            self.torn_wal_records += 1
            self._note_event("wal", f"{record.kind} (torn)")
            obs = self._observer()
            if obs is not None:
                obs.on_wal_tail_lost()
            self._crash(f"WAL append of {record.kind!r} torn at event "
                        f"{ordinal}")
        commit(record)
        self._note_event("wal", record.kind)
        if crashing:
            self._crash(f"after WAL append of {record.kind!r} at event "
                        f"{ordinal}")

    def on_page_read(self, page_id: int) -> bool:
        """A page read attempt; ``True`` tells the disk to fail it.

        The disk raises the :class:`~repro.errors.TransientReadError`
        itself (media errors originate in ``repro/storage/`` or
        ``repro/media/`` only); the injector just decides the outcome
        and keeps the per-page attempt count that makes the fault
        recover on the ``read_recover_after``-th attempt.
        """
        plan = self.plan
        if plan.read_fault != TRANSIENT or page_id != plan.read_fault_page:
            return False
        attempt = self.read_attempts.get(page_id, 0) + 1
        self.read_attempts[page_id] = attempt
        if attempt >= plan.read_recover_after:
            return False
        self.transient_read_failures += 1
        return True

    def on_page_write(self, page_id: int, old: bytes, new: bytes,
                      commit: Callable[[bytes], None]) -> None:
        """A page write is about to land.  ``commit(data)`` persists."""
        plan = self.plan
        if plan.read_fault == STUCK and page_id == plan.read_fault_page:
            # Stuck bits: every image committed to this page lands with
            # the same flips re-applied, so a repair write is corrupted
            # exactly like the original content — unrepairable media.
            original_commit = commit

            def commit(image: bytes) -> None:  # noqa: F811
                self.corruptions_applied += 1
                original_commit(self._corrupt_image(image))

        ordinal = len(self.durable_events) + 1
        crashing = plan.crash_after_event == ordinal
        if crashing and plan.torn_write:
            half = len(new) // 2
            commit(new[:half] + old[half:])
            self.torn_page_writes += 1
            self._note_event("page", f"{page_id} (torn)")
            obs = self._observer()
            if obs is not None:
                obs.on_torn_write()
            self._crash(f"torn write of page {page_id} at event {ordinal}")
        commit(new)
        self._note_event("page", page_id)
        if crashing:
            self._crash(f"after write of page {page_id} at event {ordinal}")

    # ------------------------------------------------------------------
    # named crash points (stage boundaries, n-th redo record)
    # ------------------------------------------------------------------
    def stage(self, point: str) -> None:
        """Execution reached a named stage point."""
        if self.plan.crash_point == point:
            self._crash(f"stage {point!r}")

    def redo_record(self, structure: str) -> None:
        """A logical redo record for ``structure`` was just logged."""
        target = self.plan.crash_mid_structure
        if target is None:
            return
        seen = self._redo_seen.get(structure, 0) + 1
        self._redo_seen[structure] = seen
        if structure == target[0] and seen == target[1]:
            self._crash(f"redo record {seen} of {structure!r}")

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    @property
    def durable_event_count(self) -> int:
        return len(self.durable_events)

    @property
    def crashed(self) -> bool:
        return self.crash_count > 0

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _observer(self) -> Optional[Any]:
        return None if self._disk is None else self._disk.observer

    def _corrupt_image(self, image: bytes) -> bytes:
        """Apply the plan's deterministic bit-flip mask to ``image``.

        Distinct byte positions (seeded sample) each get one bit
        flipped, so the result is guaranteed to differ from the input
        and the same (seed, page) always produces the same damage —
        every sweep point is exactly reproducible.
        """
        plan = self.plan
        rng = random.Random(
            f"{plan.read_fault_seed}:{plan.read_fault_page}"
        )
        data = bytearray(image)
        for pos in rng.sample(range(len(data)),
                              min(plan.read_fault_bits, len(data))):
            data[pos] ^= 1 << rng.randrange(8)
        return bytes(data)

    def _note_event(self, kind: str, detail: Any) -> None:
        self.durable_events.append((kind, detail))
        obs = self._observer()
        if obs is not None:
            obs.on_fault_event(kind)

    def _crash(self, description: str) -> None:
        self.crash_description = description
        self.crash_count += 1
        if self._pool is not None:
            self._pool.invalidate_all()
        obs = self._observer()
        if obs is not None:
            obs.on_crash(description)
        raise SimulatedCrash(f"injected crash: {description}")

"""Spill files: fixed-width integer tuples on simulated-disk pages.

Sort runs, range partitions, and side-files all need to park streams of
small integer tuples on disk and read them back sequentially.  A
``SpillFile`` packs ``width`` 64-bit integers per tuple into pages of
its own disk file; appends and scans are sequential I/O by
construction.
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.errors import StorageError
from repro.storage.disk import SimulatedDisk

_COUNT = struct.Struct("<I")


class SpillFile:
    """An append-then-scan file of fixed-width int tuples."""

    def __init__(self, disk: SimulatedDisk, width: int) -> None:
        if width < 1:
            raise ValueError("tuple width must be >= 1")
        self.disk = disk
        self.width = width
        self.file_id = disk.create_file()
        self.page_ids: List[int] = []
        self.tuple_count = 0
        self._entry_struct = struct.Struct(f"<{width}q")
        self._per_page = (disk.page_size - _COUNT.size) // self._entry_struct.size
        if self._per_page < 1:
            raise StorageError("page too small for one spill tuple")
        self._write_buffer: List[Tuple[int, ...]] = []
        self._sealed = False

    @classmethod
    def from_pages(
        cls, disk: SimulatedDisk, width: int, page_ids: List[int], count: int
    ) -> "SpillFile":
        """Re-open a sealed spill file from logged page ids (recovery)."""
        spill = cls(disk, width)
        spill.page_ids = list(page_ids)
        spill.tuple_count = count
        spill._sealed = True
        return spill

    @property
    def page_count(self) -> int:
        return len(self.page_ids) + (1 if self._write_buffer else 0)

    def append(self, item: Tuple[int, ...]) -> None:
        if self._sealed:
            raise StorageError("spill file already sealed")
        if len(item) != self.width:
            raise StorageError(
                f"tuple of arity {len(item)} in width-{self.width} spill file"
            )
        self._write_buffer.append(item)
        self.tuple_count += 1
        if len(self._write_buffer) >= self._per_page:
            self._flush_buffer()

    def extend(self, items: Iterable[Tuple[int, ...]]) -> None:
        for item in items:
            self.append(item)

    def seal(self) -> None:
        """Finish writing; the file becomes scannable."""
        if not self._sealed:
            self._flush_buffer()
            self._sealed = True

    def _flush_buffer(self) -> None:
        if not self._write_buffer:
            return
        data = bytearray(self.disk.page_size)
        _COUNT.pack_into(data, 0, len(self._write_buffer))
        offset = _COUNT.size
        for item in self._write_buffer:
            self._entry_struct.pack_into(data, offset, *item)
            offset += self._entry_struct.size
        page_id = self.disk.allocate_page(self.file_id)
        # Spill pages bypass the BufferPool by design: sort runs and
        # partitions are written once and scanned once, so caching them
        # would only evict pages that *do* get re-read (§2.1's sorts
        # share memory with the pool, not frames).
        self.disk.write_page(page_id, bytes(data))  # lint: allow(raw-page-io)
        if self.disk.observer is not None:
            self.disk.observer.on_spill_write(1)  # type: ignore[attr-defined]
        self.page_ids.append(page_id)
        self._write_buffer = []

    def __iter__(self) -> Iterator[Tuple[int, ...]]:
        """Sequentially scan all tuples (seals the file first)."""
        self.seal()
        for page_id in self.page_ids:
            data = self.disk.read_page(page_id)  # lint: allow(raw-page-io)
            if self.disk.observer is not None:
                self.disk.observer.on_spill_read(1)  # type: ignore[attr-defined]
            (count,) = _COUNT.unpack_from(data, 0)
            offset = _COUNT.size
            for _ in range(count):
                yield self._entry_struct.unpack_from(data, offset)
                offset += self._entry_struct.size

    def free(self) -> None:
        """Release every page (the file is unusable afterwards)."""
        for page_id in self.page_ids:
            self.disk.free_page(page_id)
        self.page_ids = []
        self._write_buffer = []
        self.tuple_count = 0
        self._sealed = True

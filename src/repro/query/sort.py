"""External merge sort with an explicit memory budget.

The sort/merge bulk-delete plans (Figure 3 of the paper) sort only the
*delete lists* — keys and RIDs — never the table or the indexes.  With
the paper's parameters those lists fit into main memory and sorting is
pure CPU work; the external path exists so that the same code remains
correct when the delete list outgrows the budget (run generation +
k-way merge on the simulated disk, all sequential I/O).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from repro.query.spill import SpillFile
from repro.storage.disk import SimulatedDisk

IntTuple = Tuple[int, ...]

#: Logical bytes per 64-bit field used for memory accounting.  The
#: paper sizes its sort workspace in raw bytes; Python object overhead
#: is deliberately ignored so that budgets mean the same thing here.
BYTES_PER_FIELD = 8


@dataclass
class SortStats:
    """What a sort did: how much spilled and how many runs merged."""

    input_tuples: int = 0
    runs: int = 0
    spilled: bool = False
    spill_pages: int = 0


class ExternalSorter:
    """Sorts streams of fixed-width int tuples within ``memory_bytes``."""

    def __init__(
        self,
        disk: SimulatedDisk,
        memory_bytes: int,
        width: int,
        key: Optional[Callable[[IntTuple], object]] = None,
    ) -> None:
        if memory_bytes < 1024:
            raise ValueError("sort memory budget must be >= 1 KiB")
        self.disk = disk
        self.memory_bytes = memory_bytes
        self.width = width
        self.key = key
        self.stats = SortStats()
        self._tuples_in_memory = max(
            64, memory_bytes // (width * BYTES_PER_FIELD)
        )

    def sort(self, items: Iterable[IntTuple]) -> Iterator[IntTuple]:
        """Return the sorted stream; spills runs to disk when needed."""
        runs: List[SpillFile] = []
        chunk: List[IntTuple] = []
        for item in items:
            chunk.append(item)
            self.stats.input_tuples += 1
            if len(chunk) >= self._tuples_in_memory:
                runs.append(self._spill_run(chunk))
                chunk = []
        self._charge_sort_cpu(len(chunk))
        chunk.sort(key=self.key)
        if not runs:
            # Everything fit in memory: one in-memory "run", no I/O at all.
            self.stats.runs = 1
            self._report()
            return iter(chunk)
        if chunk:
            runs.append(self._spill_run(chunk, presorted=True))
        self.stats.runs = len(runs)
        self.stats.spilled = True
        self.stats.spill_pages = sum(run.page_count for run in runs)
        self._report()
        return self._merge(runs)

    def _report(self) -> None:
        """Publish run-generation stats to the attached observer."""
        observer = self.disk.observer
        if observer is not None:
            observer.on_sort(self.stats)  # type: ignore[attr-defined]

    def _spill_run(
        self, chunk: List[IntTuple], presorted: bool = False
    ) -> SpillFile:
        if not presorted:
            self._charge_sort_cpu(len(chunk))
            chunk.sort(key=self.key)
        run = SpillFile(self.disk, self.width)
        run.extend(chunk)
        run.seal()
        return run

    def _merge(self, runs: List[SpillFile]) -> Iterator[IntTuple]:
        key = self.key
        if key is None:
            streams: List[Iterator[IntTuple]] = [iter(run) for run in runs]
            merged: Iterator[IntTuple] = heapq.merge(*streams)
        else:
            merged = heapq.merge(*[iter(run) for run in runs], key=key)
        try:
            for item in merged:
                yield item
        finally:
            for run in runs:
                run.free()

    def _charge_sort_cpu(self, n: int) -> None:
        if n > 1:
            self.disk.charge_cpu_records(n, factor=0.5 * math.log2(n))


def sort_tuples(
    disk: SimulatedDisk,
    items: Iterable[IntTuple],
    memory_bytes: int,
    width: int,
    key: Optional[Callable[[IntTuple], object]] = None,
) -> List[IntTuple]:
    """Convenience wrapper that materializes the sorted result."""
    sorter = ExternalSorter(disk, memory_bytes, width, key=key)
    return list(sorter.sort(items))

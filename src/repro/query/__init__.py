"""Query-execution substrate: external sort, hash tables, partitioning."""

from repro.query.hashtable import (
    BoundedHashMap,
    BoundedHashSet,
    HashTableOverflowError,
)
from repro.query.partition import RangePartition, range_partition
from repro.query.sort import ExternalSorter, SortStats, sort_tuples
from repro.query.spill import SpillFile

__all__ = [
    "BoundedHashMap",
    "BoundedHashSet",
    "ExternalSorter",
    "HashTableOverflowError",
    "RangePartition",
    "SortStats",
    "SpillFile",
    "range_partition",
    "sort_tuples",
]

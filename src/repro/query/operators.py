"""Iterator-style query operators for the SELECT path.

A small physical algebra — scans, index lookups, filter, project,
sort — so SELECT statements can use access paths instead of always
scanning.  The bulk-delete machinery does not use these (its operators
live in :mod:`repro.core.bulk_ops`); they exist so the engine is a
usable database around the paper's contribution, and so EXPLAIN-style
reasoning about access paths has something real to point at.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.btree.node import MAX_KEY, MIN_KEY
from repro.catalog.catalog import IndexInfo, TableInfo
from repro.storage.rid import RID

Row = Tuple[object, ...]
RowIter = Iterator[Tuple[RID, Row]]


def table_scan(table: TableInfo) -> RowIter:
    """Full sequential scan in physical order."""
    for rid, payload in table.heap.scan():
        yield rid, table.serializer.unpack(payload)


def index_equality_lookup(
    table: TableInfo, index: IndexInfo, key: int
) -> RowIter:
    """Fetch the rows with ``indexed column == key`` via the B-tree."""
    for packed in index.tree.search(key):
        rid = RID.unpack(packed)
        yield rid, table.serializer.unpack(table.heap.read(rid))


def index_range_scan(
    table: TableInfo,
    index: IndexInfo,
    lo: int = MIN_KEY,
    hi: int = MAX_KEY,
) -> RowIter:
    """Fetch rows with ``lo <= key <= hi`` in key order.

    Each qualifying entry costs one heap access; for a clustered index
    those accesses are sequential.
    """
    for _, packed in index.tree.range_scan(lo, hi):
        rid = RID.unpack(packed)
        yield rid, table.serializer.unpack(table.heap.read(rid))


def filter_rows(
    rows: RowIter, predicate: Callable[[Row], bool]
) -> RowIter:
    for rid, row in rows:
        if predicate(row):
            yield rid, row


def project(
    rows: RowIter, indices: Sequence[int]
) -> Iterator[Tuple[object, ...]]:
    for _, row in rows:
        yield tuple(row[i] for i in indices)


@dataclass
class AccessPath:
    """The access path chosen for one SELECT predicate."""

    kind: str  # 'scan' | 'index-eq' | 'index-range'
    index: Optional[IndexInfo] = None
    lo: Optional[int] = None
    hi: Optional[int] = None

    def describe(self) -> str:
        if self.kind == "scan":
            return "sequential scan"
        assert self.index is not None
        if self.kind == "index-eq":
            return f"index lookup on {self.index.name}"
        return f"index range scan on {self.index.name} [{self.lo}, {self.hi}]"


def choose_access_path(
    table: TableInfo, column: Optional[str], op: Optional[str],
    value: Optional[int],
) -> AccessPath:
    """Pick an index when the predicate allows, else scan.

    Equality and range comparisons on an indexed integer column use the
    index; everything else scans.  A genuinely selective optimizer
    would weigh selectivity against the random heap accesses an
    unclustered index lookup costs; with the statistics kept by
    :mod:`repro.catalog.statistics` the cutoff is a straightforward
    extension, but SELECT performance is not what the paper measures.
    """
    if column is None or op is None or not isinstance(value, int):
        return AccessPath("scan")
    candidates = table.indexes_on(column)
    online = [ix for ix in candidates if ix.is_online]
    if not online:
        return AccessPath("scan")
    index = online[0]
    if op == "=":
        return AccessPath("index-eq", index=index, lo=value, hi=value)
    if op in ("<", "<="):
        hi = value - 1 if op == "<" else value
        return AccessPath("index-range", index=index, lo=MIN_KEY, hi=hi)
    if op in (">", ">="):
        lo = value + 1 if op == ">" else value
        return AccessPath("index-range", index=index, lo=lo, hi=MAX_KEY)
    return AccessPath("scan")


def execute_access_path(
    table: TableInfo, path: AccessPath
) -> RowIter:
    if path.kind == "scan":
        return table_scan(table)
    assert path.index is not None
    if path.kind == "index-eq":
        return index_equality_lookup(table, path.index, path.lo)  # type: ignore[arg-type]
    return index_range_scan(table, path.index, path.lo, path.hi)  # type: ignore[arg-type]

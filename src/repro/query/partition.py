"""Range partitioning for bulk deletes that outgrow main memory.

Figure 5 of the paper: when the RID list is too large for one in-memory
hash table, partition it into key ranges such that each partition's
hash table fits, then run the hash-based ``bd`` once per partition over
the matching leaf range of the (key-clustered) index.  "I_B and I_C can
be range partitioned without any cost" because an index is physically
ordered by its key — each partition maps to a contiguous run of leaf
pages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.btree.node import MAX_KEY, MIN_KEY
from repro.query.spill import SpillFile
from repro.storage.disk import SimulatedDisk

IntTuple = Tuple[int, ...]


@dataclass
class RangePartition:
    """One key range ``[lo, hi]`` and its tuples (possibly spilled)."""

    lo: int
    hi: int
    spill: SpillFile

    @property
    def tuple_count(self) -> int:
        return self.spill.tuple_count

    def __iter__(self):
        return iter(self.spill)

    def free(self) -> None:
        self.spill.free()


def choose_boundaries(
    sorted_keys: Sequence[int], partition_count: int
) -> List[int]:
    """Split points producing ``partition_count`` near-equal ranges.

    Returns the *lower bounds* of partitions 1..n-1; partition 0 starts
    at ``MIN_KEY``.
    """
    if partition_count < 2 or not sorted_keys:
        return []
    step = len(sorted_keys) / partition_count
    bounds: List[int] = []
    for i in range(1, partition_count):
        bounds.append(sorted_keys[min(len(sorted_keys) - 1, int(i * step))])
    # Collapse duplicate boundaries (heavy duplicate keys).
    unique: List[int] = []
    for b in bounds:
        if not unique or b > unique[-1]:
            unique.append(b)
    return unique


def range_partition(
    disk: SimulatedDisk,
    items: Iterable[IntTuple],
    key_index: int,
    width: int,
    max_tuples_per_partition: int,
) -> List[RangePartition]:
    """Partition ``items`` by ``item[key_index]`` into ranges that fit.

    The input is buffered once to pick boundaries (the delete list is
    orders of magnitude smaller than the table); tuples then spill to
    one sequential file per partition, exactly as the partitioning phase
    of a grace hash join would.
    """
    if max_tuples_per_partition < 1:
        raise ValueError("partitions must hold at least one tuple")
    buffered = list(items)
    if not buffered:
        return []
    keys = sorted(item[key_index] for item in buffered)
    disk.charge_cpu_records(len(keys), factor=0.5 * max(1.0, math.log2(len(keys))))
    count = max(1, math.ceil(len(buffered) / max_tuples_per_partition))
    bounds = choose_boundaries(keys, count)
    lows = [MIN_KEY] + bounds
    highs = bounds + [MAX_KEY]
    partitions = [
        RangePartition(lo, hi, SpillFile(disk, width))
        for lo, hi in zip(lows, highs)
    ]
    for item in buffered:
        key = item[key_index]
        partitions[_locate(bounds, key)].spill.append(item)
    for partition in partitions:
        partition.spill.seal()
    return [p for p in partitions if p.tuple_count]


def _locate(bounds: List[int], key: int) -> int:
    """Index of the partition whose range contains ``key``."""
    import bisect

    return bisect.bisect_right(bounds, key)

"""Memory-accounted hash tables for the hash-based bulk-delete plans.

The hash variant of the ``bd`` operator (Figure 4 of the paper) builds a
main-memory hash table from the RID list and probes it while scanning
the base table and the leaf levels of the indexes — the *classic hash
join* of Shapiro [18].  It "is particularly attractive if the hash table
really fits into physical main memory"; when it does not, the planner
must fall back to range partitioning (Figure 5).

``BoundedHashSet``/``BoundedHashMap`` enforce that decision: building
past the byte budget raises :class:`HashTableOverflowError`, which the
executor catches to switch strategies.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import ReproError

#: Logical bytes charged per hash-table entry: an 8-byte key plus bucket
#: overhead comparable to a C implementation's pointers.
BYTES_PER_SET_ENTRY = 16
BYTES_PER_MAP_ENTRY = 24


class HashTableOverflowError(ReproError):
    """The build input exceeds the main-memory budget."""


class BoundedHashSet:
    """A set of 64-bit integers with a byte budget."""

    def __init__(self, memory_bytes: int) -> None:
        self.memory_bytes = memory_bytes
        self.capacity = max(1, memory_bytes // BYTES_PER_SET_ENTRY)
        self._items: Set[int] = set()

    def build(self, items: Iterable[int]) -> "BoundedHashSet":
        for item in items:
            self.add(item)
        return self

    def add(self, item: int) -> None:
        if item not in self._items and len(self._items) >= self.capacity:
            raise HashTableOverflowError(
                f"hash set of {len(self._items)} entries exceeds "
                f"{self.memory_bytes} bytes"
            )
        self._items.add(item)

    def discard(self, item: int) -> None:
        self._items.discard(item)

    def __contains__(self, item: int) -> bool:
        return item in self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[int]:
        return iter(self._items)


class BoundedHashMap:
    """An int → int-tuple map with a byte budget (duplicate-friendly)."""

    def __init__(self, memory_bytes: int, payload_width: int = 1) -> None:
        self.memory_bytes = memory_bytes
        entry_bytes = BYTES_PER_MAP_ENTRY + 8 * max(0, payload_width - 1)
        self.capacity = max(1, memory_bytes // entry_bytes)
        self._items: Dict[int, List[Tuple[int, ...]]] = {}
        self._count = 0

    def add(self, key: int, payload: Tuple[int, ...]) -> None:
        if self._count >= self.capacity:
            raise HashTableOverflowError(
                f"hash map of {self._count} entries exceeds "
                f"{self.memory_bytes} bytes"
            )
        self._items.setdefault(key, []).append(payload)
        self._count += 1

    def get(self, key: int) -> List[Tuple[int, ...]]:
        return self._items.get(key, [])

    def pop_all(self, key: int) -> List[Tuple[int, ...]]:
        payloads = self._items.pop(key, [])
        self._count -= len(payloads)
        return payloads

    def __contains__(self, key: int) -> bool:
        return key in self._items

    def __len__(self) -> int:
        return self._count

    def keys(self) -> Iterator[int]:
        return iter(self._items)

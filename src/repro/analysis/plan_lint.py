"""Static linter for :class:`~repro.core.plans.BulkDeletePlan` DAGs.

The paper's vertical plans carry hard structural invariants that are
cheap to verify *before* the executor burns simulated I/O on them:

* unique indexes are scheduled before the base table so their
  constraint can come back on-line early (§3.1.3),
* the RID sort may be skipped only when the driving index is clustered
  — the paper's "interesting order" argument — or when a table scan
  produces the RID list in physical order already,
* every B-tree index of the table is covered exactly once (a skipped
  index would leave dangling entries; a doubled one wastes a sweep),
* an in-memory hash ``bd`` must actually fit ``db.memory_bytes``
  (Figure 4's "particularly attractive if the hash table really fits"),
* hash indexes never appear as vertical steps (§5: they are maintained
  record-at-a-time), and off-line indexes cannot be plan targets —
  their updates are owned by a side-file until they quiesce
  (:mod:`repro.txn.sidefile`).

Each invariant is one registered rule; :func:`lint_plan` runs them all
and returns structured :class:`~repro.analysis.findings.Finding`
objects.  ``repro.core.executor.execute_plan`` rejects plans with
ERROR findings (``validate=True``), and EXPLAIN appends the report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.retention.policy import RetentionPlan
    from repro.shard.planning import ShardedDeletePlan

from repro.analysis.findings import Finding, Severity
from repro.catalog.catalog import IndexInfo, TableInfo
from repro.catalog.database import Database
from repro.core.operator import build_dag
from repro.core.plans import BdMethod, BdPredicate, BulkDeletePlan, StepPlan
from repro.errors import PlanningError
from repro.parallel import CONTENTION_MODES
from repro.query.hashtable import BYTES_PER_SET_ENTRY


@dataclass
class PlanContext:
    """Everything a plan rule may inspect.

    ``db``/``table`` are optional: purely structural rules run on a
    bare plan, catalog-aware rules (uniqueness, clustering, memory
    budget, index state) silently skip when no database is supplied.
    """

    plan: BulkDeletePlan
    db: Optional[Database] = None
    table: Optional[TableInfo] = None
    #: Set by :func:`lint_sharded_plan` for the shard-level pass; the
    #: shard rules no-op when it is ``None`` (plain unsharded lint).
    shard_plan: Optional["ShardedDeletePlan"] = None
    #: Set by :func:`lint_retention_plan` for the retention-coverage
    #: pass; the retention rules no-op when it is ``None``.
    retention_plan: Optional["RetentionPlan"] = None

    def index(self, name: str) -> Optional[IndexInfo]:
        if self.table is None or name not in self.table.indexes:
            return None
        return self.table.indexes[name]

    @property
    def is_horizontal(self) -> bool:
        steps = self.plan.steps
        return (
            len(steps) == 1
            and steps[0].is_table
            and steps[0].method is BdMethod.NESTED_LOOPS
        )

    def rid_hash_fits(self) -> Optional[bool]:
        """Would a RID hash set of the delete list fit?  ``None`` when
        the plan does not record the delete-list size or no budget is
        known."""
        if self.db is None or self.plan.n_deletes is None:
            return None
        return (
            self.plan.n_deletes * BYTES_PER_SET_ENTRY
            <= self.db.memory_bytes
        )


PlanRule = Callable[[PlanContext], Iterator[Finding]]

#: rule id -> (rule function, one-line description for the catalogue)
PLAN_RULES: Dict[str, "RegisteredRule"] = {}


@dataclass(frozen=True)
class RegisteredRule:
    rule_id: str
    description: str
    check: PlanRule


def plan_rule(
    rule_id: str, description: str
) -> Callable[[PlanRule], PlanRule]:
    """Register one plan-invariant rule under ``rule_id``."""

    def decorator(func: PlanRule) -> PlanRule:
        if rule_id in PLAN_RULES:
            raise ValueError(f"duplicate plan rule {rule_id}")
        PLAN_RULES[rule_id] = RegisteredRule(rule_id, description, func)
        return func

    return decorator


def _step_node(step: StepPlan, plan: BulkDeletePlan) -> str:
    name = plan.table_name if step.is_table else step.target
    return f"bd[{step.method.value}/{step.predicate.value}] {name}"


# ---------------------------------------------------------------------------
# structural rules (no catalog needed)
# ---------------------------------------------------------------------------
@plan_rule(
    "plan/table-step",
    "a plan must delete from the base table exactly once",
)
def _rule_table_step(ctx: PlanContext) -> Iterator[Finding]:
    table_steps = [s for s in ctx.plan.steps if s.is_table]
    if len(table_steps) != 1:
        yield Finding(
            "plan/table-step",
            Severity.ERROR,
            ctx.plan.table_name,
            f"plan has {len(table_steps)} base-table steps; exactly one "
            "bd over the table is required (§2.1)",
        )


@plan_rule(
    "plan/driving-index-first",
    "the driving index's bd must exist and come first (it produces the "
    "RID list every later step consumes)",
)
def _rule_driving_first(ctx: PlanContext) -> Iterator[Finding]:
    plan = ctx.plan
    if plan.driving_index is None or ctx.is_horizontal:
        return
    matches = [s for s in plan.steps if s.target == plan.driving_index]
    if not matches:
        yield Finding(
            "plan/driving-index-first",
            Severity.ERROR,
            plan.driving_index,
            f"driving index {plan.driving_index} has no bd step; nothing "
            "produces the RID list",
        )
        return
    if plan.steps[0].target != plan.driving_index:
        yield Finding(
            "plan/driving-index-first",
            Severity.ERROR,
            _step_node(plan.steps[0], plan),
            f"step 1 targets {plan.steps[0].target!r} but the driving "
            f"index {plan.driving_index} must run first to produce the "
            "RID list",
        )
    driving = matches[0]
    if driving.predicate is not BdPredicate.KEY:
        yield Finding(
            "plan/driving-index-first",
            Severity.ERROR,
            _step_node(driving, plan),
            "the driving index is probed by delete *keys* (sorted D), "
            f"not by {driving.predicate.value}",
        )


@plan_rule(
    "plan/clustered-skip-sort",
    "the RID sort may be skipped only for a clustered driving index "
    "(interesting order) or a table scan",
)
def _rule_skip_sort(ctx: PlanContext) -> Iterator[Finding]:
    plan = ctx.plan
    if ctx.is_horizontal:
        return
    if plan.driving_index is None:
        # A table scan emits RIDs in physical order; sorting them is
        # harmless but pointless.
        if plan.sort_rid_list:
            yield Finding(
                "plan/clustered-skip-sort",
                Severity.WARNING,
                plan.table_name,
                "table scan already yields RIDs in physical order; the "
                "RID sort is wasted work",
            )
        return
    index = ctx.index(plan.driving_index)
    if index is None:
        return  # catalog unavailable; plan/coverage reports unknown names
    if not plan.sort_rid_list and not index.clustered:
        yield Finding(
            "plan/clustered-skip-sort",
            Severity.ERROR,
            plan.driving_index,
            f"sort_rid_list=False but driving index {index.name} is not "
            "clustered: its RID list is in key order, and an unsorted "
            "heap sweep degenerates to random I/O (§2.1 interesting "
            "order)",
        )
    if plan.sort_rid_list and index.clustered:
        yield Finding(
            "plan/clustered-skip-sort",
            Severity.WARNING,
            plan.driving_index,
            f"driving index {index.name} is clustered; the RID list "
            "inherits physical order and the sort can be skipped",
        )


@plan_rule(
    "plan/nested-loops-vertical-mix",
    "nested-loops is the horizontal path; it cannot appear inside a "
    "vertical plan",
)
def _rule_nested_loops(ctx: PlanContext) -> Iterator[Finding]:
    plan = ctx.plan
    if ctx.is_horizontal:
        return
    for step in plan.steps:
        if step.method is BdMethod.NESTED_LOOPS:
            yield Finding(
                "plan/nested-loops-vertical-mix",
                Severity.ERROR,
                _step_node(step, plan),
                "nested-loops bd inside a multi-step vertical plan; "
                "horizontal plans are a single base-table step executed "
                "by repro.core.traditional",
            )


@plan_rule(
    "plan/pre-table-rid-probe",
    "steps scheduled before the base table are RID probes into the "
    "delete list's hash set",
)
def _rule_pre_table(ctx: PlanContext) -> Iterator[Finding]:
    plan = ctx.plan
    if ctx.is_horizontal:
        return
    for step in plan.steps_before_table():
        if step.target == plan.driving_index:
            continue
        if step.predicate is not BdPredicate.RID:
            yield Finding(
                "plan/pre-table-rid-probe",
                Severity.ERROR,
                _step_node(step, plan),
                "before the table is swept no deleted row exists to "
                "project keys from; pre-table index steps must probe "
                "by RID",
            )


@plan_rule(
    "plan/dag-shape",
    "the rendered operator DAG contains one bd node per step",
)
def _rule_dag_shape(ctx: PlanContext) -> Iterator[Finding]:
    plan = ctx.plan
    if ctx.is_horizontal:
        return
    try:
        root = build_dag(plan)
    except (PlanningError, StopIteration) as exc:
        yield Finding(
            "plan/dag-shape",
            Severity.ERROR,
            plan.table_name,
            f"operator DAG cannot be built from this plan: {exc}",
        )
        return
    bd_nodes = [n for n in root.walk() if n.label.startswith("bd[")]
    if len(bd_nodes) != len(plan.steps):
        yield Finding(
            "plan/dag-shape",
            Severity.ERROR,
            plan.table_name,
            f"plan has {len(plan.steps)} steps but its DAG renders "
            f"{len(bd_nodes)} bd operators; the step list and the "
            "figure-style DAG disagree",
        )


@plan_rule(
    "plan/parallel-lane-safety",
    "concurrent lanes execute disjoint structures: no structure may "
    "appear twice inside one parallel region, and the lane "
    "configuration itself must be valid",
)
def _rule_parallel_lane_safety(ctx: PlanContext) -> Iterator[Finding]:
    plan = ctx.plan
    if plan.lanes < 1:
        yield Finding(
            "plan/parallel-lane-safety",
            Severity.ERROR,
            plan.table_name,
            f"lanes={plan.lanes}; a plan needs at least one lane",
        )
        return
    if plan.contention not in CONTENTION_MODES:
        yield Finding(
            "plan/parallel-lane-safety",
            Severity.ERROR,
            plan.table_name,
            f"unknown contention mode {plan.contention!r}; expected one "
            f"of {CONTENTION_MODES}",
        )
    if plan.lanes == 1 or ctx.is_horizontal:
        return
    # The executor runs two barrier-to-barrier regions; lanes within a
    # region run concurrently, so a structure targeted twice in the
    # same region would be mutated by two lanes at once.
    region1 = [
        plan.table_name if s.is_table else s.target
        for s in plan.steps_before_table()
        if s.target != plan.driving_index
    ] + [plan.table_name]
    region2 = [s.target for s in plan.steps_after_table()]
    width = 1
    for region_name, targets in (
        ("pre-table", region1),
        ("index-maintenance", region2),
    ):
        width = max(width, len(targets))
        counts: Dict[str, int] = {}
        for target in targets:
            counts[target] = counts.get(target, 0) + 1
        for target, count in sorted(counts.items()):
            if count > 1:
                yield Finding(
                    "plan/parallel-lane-safety",
                    Severity.ERROR,
                    target,
                    f"structure {target} appears {count} times in the "
                    f"{region_name} parallel region; concurrent lanes "
                    "must not share a mutable structure",
                )
    if plan.lanes > width:
        yield Finding(
            "plan/parallel-lane-safety",
            Severity.WARNING,
            plan.table_name,
            f"{plan.lanes} lanes but the widest parallel region has "
            f"only {width} branch(es); the extra lanes stay idle",
        )


# ---------------------------------------------------------------------------
# shard-level rules (run by lint_sharded_plan; no-ops otherwise)
# ---------------------------------------------------------------------------
@plan_rule(
    "plan/shard-coverage",
    "every delete key of a sharded plan is routed to exactly one "
    "fragment, inside that fragment's shard range, and concurrent "
    "fragments target distinct shards",
)
def _rule_shard_coverage(ctx: PlanContext) -> Iterator[Finding]:
    shard_plan = ctx.shard_plan
    if shard_plan is None:
        return
    shard_map = shard_plan.shard_map
    seen: Dict[int, int] = {}
    for frag in shard_plan.fragments:
        node = f"shard[{frag.shard_id}] {frag.table_name}"
        for key in frag.keys:
            if not shard_map.covers(frag.shard_id, key):
                yield Finding(
                    "plan/shard-coverage",
                    Severity.ERROR,
                    node,
                    f"key {key} is routed to shard {frag.shard_id} "
                    f"{shard_map.describe(frag.shard_id)} but lies "
                    "outside that range; the fragment would sweep the "
                    "wrong structures",
                )
            elif key in seen:
                yield Finding(
                    "plan/shard-coverage",
                    Severity.ERROR,
                    node,
                    f"key {key} appears in fragments of shard "
                    f"{seen[key]} and shard {frag.shard_id}; a key "
                    "must be routed exactly once",
                )
            else:
                seen[key] = frag.shard_id
        if ctx.table is not None and ctx.table.is_sharded:
            expected = ctx.table.shard(frag.shard_id).name
            if frag.table_name != expected:
                yield Finding(
                    "plan/shard-coverage",
                    Severity.ERROR,
                    node,
                    f"fragment targets {frag.table_name!r} but shard "
                    f"{frag.shard_id} of {shard_plan.table_name} is "
                    f"{expected!r}",
                )
    targets: Dict[str, int] = {}
    for frag in shard_plan.fragments:
        if frag.is_parallel:
            targets[frag.table_name] = targets.get(frag.table_name, 0) + 1
    for target, count in sorted(targets.items()):
        if count > 1:
            yield Finding(
                "plan/shard-coverage",
                Severity.ERROR,
                target,
                f"{count} parallel fragments target shard table "
                f"{target}; concurrent lanes must not share a mutable "
                "structure (serialize or merge the fragments)",
            )


# ---------------------------------------------------------------------------
# catalog-aware rules
# ---------------------------------------------------------------------------
@plan_rule(
    "plan/exactly-once-coverage",
    "every B-tree index of the table is deleted from exactly once; "
    "hash indexes never appear as vertical steps",
)
def _rule_coverage(ctx: PlanContext) -> Iterator[Finding]:
    plan, table = ctx.plan, ctx.table
    if table is None:
        return
    counts: Dict[str, int] = {}
    for step in plan.index_steps():
        counts[step.target] = counts.get(step.target, 0) + 1
    for name, count in counts.items():
        index = ctx.index(name)
        if index is None:
            yield Finding(
                "plan/exactly-once-coverage",
                Severity.ERROR,
                name,
                f"plan step targets unknown index {name!r} on table "
                f"{table.name}",
            )
        elif not index.is_btree:
            yield Finding(
                "plan/exactly-once-coverage",
                Severity.ERROR,
                name,
                f"{name} is a hash index: vertical bd applies to "
                "B-trees only; hash indexes are maintained "
                "record-at-a-time (§5)",
            )
        elif count > 1:
            yield Finding(
                "plan/exactly-once-coverage",
                Severity.ERROR,
                name,
                f"index {name} is deleted from {count} times; the "
                "second sweep would find (and charge for) nothing",
            )
    if ctx.is_horizontal:
        return  # the horizontal executor maintains every index per record
    for index in table.btree_indexes():
        if index.name not in counts:
            yield Finding(
                "plan/exactly-once-coverage",
                Severity.ERROR,
                index.name,
                f"index {index.name} is never processed: its entries "
                "for the deleted rows would dangle",
            )


@plan_rule(
    "plan/unique-index-first",
    "unique indexes are processed before the base table so their "
    "constraint can come back on-line early (§3.1.3)",
)
def _rule_unique_first(ctx: PlanContext) -> Iterator[Finding]:
    plan, table = ctx.plan, ctx.table
    if table is None or ctx.is_horizontal:
        return
    fits = ctx.rid_hash_fits()
    for step in plan.steps_after_table():
        index = ctx.index(step.target)
        if index is None or not index.unique or not index.is_btree:
            continue
        if index.name == plan.driving_index:
            continue
        if fits is False:
            # Legal fallback: the RID hash the pre-table probe needs
            # does not fit, so the unique index waits for projections.
            yield Finding(
                "plan/unique-index-first",
                Severity.WARNING,
                _step_node(step, plan),
                f"unique index {index.name} is processed after the "
                "table (RID hash set exceeds the memory budget); its "
                "uniqueness constraint stays off-line for the whole "
                "sweep",
            )
        else:
            yield Finding(
                "plan/unique-index-first",
                Severity.ERROR,
                _step_node(step, plan),
                f"unique index {index.name} is scheduled after the base "
                "table although a RID hash set fits in memory; §3.1.3 "
                "orders unique indexes first so their constraint "
                "re-enables early",
            )


@plan_rule(
    "plan/hash-memory-budget",
    "an in-memory hash bd must fit db.memory_bytes; otherwise the "
    "plan must range-partition (Figure 5)",
)
def _rule_hash_budget(ctx: PlanContext) -> Iterator[Finding]:
    plan = ctx.plan
    fits = ctx.rid_hash_fits()
    if fits is None or fits:
        return
    assert ctx.db is not None and plan.n_deletes is not None
    need = plan.n_deletes * BYTES_PER_SET_ENTRY
    for step in plan.steps:
        if step.method is BdMethod.HASH:
            yield Finding(
                "plan/hash-memory-budget",
                Severity.ERROR,
                _step_node(step, plan),
                f"hash bd needs ~{need} bytes for {plan.n_deletes} RIDs "
                f"but the memory budget is {ctx.db.memory_bytes}; use "
                "partitioned-hash (Figure 5) or sort-merge",
            )


@plan_rule(
    "plan/offline-index",
    "off-line indexes are owned by a side-file drain; they cannot be "
    "bulk-delete targets until they quiesce",
)
def _rule_offline(ctx: PlanContext) -> Iterator[Finding]:
    plan, table = ctx.plan, ctx.table
    if table is None:
        return
    targets = {s.target for s in plan.index_steps()}
    if not ctx.is_horizontal:
        targets |= {ix.name for ix in table.btree_indexes()}
    for name in sorted(targets):
        index = ctx.index(name)
        if index is not None and not index.is_online:
            yield Finding(
                "plan/offline-index",
                Severity.ERROR,
                name,
                f"index {name} is off-line: another bulk operation owns "
                "it and concurrent changes are being captured in its "
                "side-file (§3.1.1); plan after it drains and "
                "re-enables",
            )


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------
def lint_plan(
    plan: BulkDeletePlan,
    db: Optional[Database] = None,
    rules: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Run every registered rule (or the named subset) over ``plan``.

    ``db`` unlocks the catalog-aware rules; without it only the
    structural invariants are checked.  Findings come back ordered by
    severity (errors first), then rule id.
    """
    table: Optional[TableInfo] = None
    if db is not None and db.catalog.has_table(plan.table_name):
        table = db.table(plan.table_name)
    ctx = PlanContext(plan=plan, db=db, table=table)
    selected = (
        list(PLAN_RULES) if rules is None else
        [r for r in rules if r in PLAN_RULES]
    )
    findings: List[Finding] = []
    for rule_id in selected:
        findings.extend(PLAN_RULES[rule_id].check(ctx))
    order = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}
    findings.sort(key=lambda f: (order[f.severity], f.rule_id, f.node))
    return findings


def lint_sharded_plan(
    shard_plan: "ShardedDeletePlan",
    db: Optional[Database] = None,
) -> List[Finding]:
    """Lint a sharded plan: each fragment's core plan, then the
    shard-level routing invariants (``plan/shard-coverage``).

    Fragment plans go through the full :func:`lint_plan` rule set with
    catalog context (each against its own physical shard table); the
    shard pass runs once over the whole fragment list.
    """
    findings: List[Finding] = []
    for frag in shard_plan.fragments:
        findings.extend(lint_plan(frag.plan, db))
    table: Optional[TableInfo] = None
    if db is not None and db.catalog.has_table(shard_plan.table_name):
        table = db.table(shard_plan.table_name)
    anchor = (
        shard_plan.fragments[0].plan
        if shard_plan.fragments
        else BulkDeletePlan(
            table_name=shard_plan.table_name,
            column=shard_plan.column,
            driving_index=None,
        )
    )
    ctx = PlanContext(
        plan=anchor, db=db, table=table, shard_plan=shard_plan
    )
    findings.extend(PLAN_RULES["plan/shard-coverage"].check(ctx))
    order = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}
    findings.sort(key=lambda f: (order[f.severity], f.rule_id, f.node))
    return findings


# ---------------------------------------------------------------------------
# retention-policy rules (repro.retention)
# ---------------------------------------------------------------------------
@plan_rule(
    "plan/retention-coverage",
    "every table FK-reachable from a retention policy's root is covered "
    "by exactly one DAG node, and RESTRICT-guarded tables are never "
    "touched",
)
def _rule_retention_coverage(ctx: PlanContext) -> Iterator[Finding]:
    retention_plan = ctx.retention_plan
    if retention_plan is None:
        return
    policy = retention_plan.policy.name
    counts: Dict[str, int] = {}
    for node in retention_plan.nodes:
        counts[node.table] = counts.get(node.table, 0) + 1
    for table_name in retention_plan.reachable:
        node = f"retention[{policy}] {table_name}"
        count = counts.get(table_name, 0)
        if count == 0:
            yield Finding(
                "plan/retention-coverage",
                Severity.ERROR,
                node,
                f"table {table_name} is FK-reachable from the policy "
                "root but no DAG node covers it; its referencing rows "
                "would survive the erasure",
            )
        elif count > 1:
            yield Finding(
                "plan/retention-coverage",
                Severity.ERROR,
                node,
                f"{count} DAG nodes target {table_name}; coverage must "
                "be exactly once (merge the edges into one node)",
            )
    reachable = set(retention_plan.reachable)
    restricted = set(retention_plan.restricted)
    for plan_node in retention_plan.nodes:
        node = f"retention[{policy}] {plan_node.table}"
        if plan_node.table in restricted:
            yield Finding(
                "plan/retention-coverage",
                Severity.ERROR,
                node,
                f"node {plan_node.describe()!r} targets RESTRICT-guarded "
                f"table {plan_node.table}; the constraint forbids "
                "touching it",
            )
        elif plan_node.table not in reachable:
            yield Finding(
                "plan/retention-coverage",
                Severity.ERROR,
                node,
                f"node {plan_node.describe()!r} targets a table the "
                "policy cannot reach over FK edges; the compiler must "
                "not invent work",
            )


def lint_retention_plan(
    retention_plan: "RetentionPlan",
    db: Optional[Database] = None,
) -> List[Finding]:
    """Lint a compiled retention plan: each heap delete node's vertical
    plan, then the policy-level ``plan/retention-coverage`` invariants.

    Node plans go through the full :func:`lint_plan` rule set with
    catalog context; LSM and SET NULL nodes carry no vertical DAG and
    are covered by the policy-level pass alone.
    """
    findings: List[Finding] = []
    if db is not None:
        from repro.core.planner import choose_plan

        for node in retention_plan.nodes:
            if node.action != "delete" or not node.keys:
                continue
            if db.table(node.table).lsm is not None:
                continue
            findings.extend(lint_plan(
                choose_plan(db, node.table, node.column, len(node.keys)),
                db,
            ))
    table: Optional[TableInfo] = None
    root = retention_plan.policy.table
    if db is not None and db.catalog.has_table(root):
        table = db.table(root)
    anchor = BulkDeletePlan(
        table_name=root,
        column=retention_plan.policy.column,
        driving_index=None,
    )
    ctx = PlanContext(
        plan=anchor, db=db, table=table, retention_plan=retention_plan
    )
    findings.extend(PLAN_RULES["plan/retention-coverage"].check(ctx))
    order = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}
    findings.sort(key=lambda f: (order[f.severity], f.rule_id, f.node))
    return findings

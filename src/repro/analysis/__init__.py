"""Static analysis for the reproduction: plan linter + code linter.

Two cooperating checkers guard the invariants the simulated results
stand on:

* :mod:`repro.analysis.plan_lint` statically verifies the paper's
  structural plan invariants over :class:`~repro.core.plans.BulkDeletePlan`
  and its operator DAG before the executor spends simulated I/O,
* :mod:`repro.analysis.code_lint` walks the package's ASTs and rejects
  wall-clock reads, unseeded randomness, raw page I/O outside
  ``repro/storage/``, and ``==`` between float cost estimates.

Run both with ``python -m repro.analysis`` (or ``repro lint`` from the
CLI); they are also collected as pytest gates in
``tests/test_plan_lint.py`` / ``tests/test_code_lint.py``.
"""

from repro.analysis.code_lint import (
    CODE_RULES,
    default_root,
    lint_source,
    lint_tree,
)
from repro.analysis.findings import (
    Finding,
    Severity,
    errors,
    render_findings,
)
from repro.analysis.plan_lint import PLAN_RULES, lint_plan
from repro.analysis.selfcheck import check_planner_output

__all__ = [
    "CODE_RULES",
    "Finding",
    "PLAN_RULES",
    "Severity",
    "check_planner_output",
    "default_root",
    "errors",
    "lint_plan",
    "lint_source",
    "lint_tree",
    "render_findings",
]

"""``python -m repro.analysis`` — run both static checkers as a gate.

Exit status is 0 when no ERROR findings survive, 1 otherwise (2 for
usage errors), so CI can gate on it directly.  ``--format json`` emits
a machine-readable report for tooling.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.code_lint import default_root, lint_tree
from repro.analysis.findings import Finding, Severity, render_findings
from repro.analysis.selfcheck import check_planner_output


def run_analysis(
    root: Optional[Path] = None,
    skip_code: bool = False,
    skip_plans: bool = False,
    include_warnings: bool = True,
) -> List[Finding]:
    """Run the code lint over ``root`` and the planner self-check."""
    findings: List[Finding] = []
    if not skip_code:
        findings.extend(lint_tree(root or default_root()))
    if not skip_plans:
        findings.extend(
            check_planner_output(errors_only=not include_warnings)
        )
    return findings


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="static plan linter + simulation-invariant code lint",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="package directory to code-lint (default: the installed "
        "repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--skip-code", action="store_true",
        help="skip the AST code lint",
    )
    parser.add_argument(
        "--skip-plans", action="store_true",
        help="skip the planner-output self-check",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="treat WARNING findings as failures too",
    )
    args = parser.parse_args(argv)
    if args.root is not None and not args.root.is_dir():
        parser.error(f"--root {args.root} is not a directory")

    findings = run_analysis(
        root=args.root,
        skip_code=args.skip_code,
        skip_plans=args.skip_plans,
    )
    error_count = sum(
        1 for f in findings if f.severity is Severity.ERROR
    )
    warning_count = len(findings) - error_count
    failed = error_count > 0 or (args.strict and warning_count > 0)

    if args.format == "json":
        print(
            json.dumps(
                {
                    "ok": not failed,
                    "errors": error_count,
                    "warnings": warning_count,
                    "findings": [f.to_dict() for f in findings],
                },
                indent=2,
            )
        )
    else:
        if findings:
            print(render_findings(findings))
        print(
            f"repro.analysis: {error_count} error(s), "
            f"{warning_count} warning(s) — "
            + ("FAIL" if failed else "ok")
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

"""``python -m repro.analysis`` — run the static checkers as a gate.

Three checkers: the simulation-invariant code lint (over one or more
roots — the package by default, plus ``benchmarks/ tools/ tests/`` in
CI), the planner self-check, and the whole-program effect engine
(layering contracts + lane safety; see ``docs/static_analysis.md``).

Exit status is 0 when no ERROR findings survive, 1 otherwise (2 for
usage errors), so CI can gate on it directly.  ``--format json`` emits
a machine-readable report for tooling.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.code_lint import default_root, lint_tree
from repro.analysis.findings import Finding, Severity, render_findings
from repro.analysis.selfcheck import check_planner_output


def run_analysis(
    root: Optional[Path] = None,
    skip_code: bool = False,
    skip_plans: bool = False,
    skip_effects: bool = False,
    include_warnings: bool = True,
    extra_roots: Sequence[Path] = (),
) -> List[Finding]:
    """Run every checker; ``root`` is the package dir for the code
    lint and the effect engine, ``extra_roots`` are linted too."""
    findings: List[Finding] = []
    if not skip_code:
        findings.extend(lint_tree(root or default_root()))
        for extra in extra_roots:
            findings.extend(lint_tree(extra))
    if not skip_plans:
        findings.extend(
            check_planner_output(errors_only=not include_warnings)
        )
    if not skip_effects:
        from repro.analysis.effects import analyze_effects

        # The checked-in baseline names functions of the repro tree;
        # holding a foreign --root to it would only yield stale-entry
        # errors, so custom roots run against an empty baseline.
        effect_root = root or default_root()
        if effect_root == default_root():
            report = analyze_effects(effect_root)
        else:
            report = analyze_effects(effect_root, baseline=())
        findings.extend(report.findings)
    return findings


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "static plan linter + simulation-invariant code lint + "
            "whole-program effect engine"
        ),
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="package directory to analyze (default: the installed "
        "repro package)",
    )
    parser.add_argument(
        "--also-lint",
        type=Path,
        action="append",
        default=[],
        metavar="DIR",
        help="additional directory for the code lint only (repeat for "
        "several; the effect engine stays on --root)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--skip-code", action="store_true",
        help="skip the AST code lint",
    )
    parser.add_argument(
        "--skip-plans", action="store_true",
        help="skip the planner-output self-check",
    )
    parser.add_argument(
        "--skip-effects", action="store_true",
        help="skip the whole-program effect engine",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="treat WARNING findings as failures too",
    )
    args = parser.parse_args(argv)
    if args.root is not None and not args.root.is_dir():
        parser.error(f"--root {args.root} is not a directory")
    for extra in args.also_lint:
        if not extra.is_dir():
            parser.error(f"--also-lint {extra} is not a directory")

    findings = run_analysis(
        root=args.root,
        skip_code=args.skip_code,
        skip_plans=args.skip_plans,
        skip_effects=args.skip_effects,
        extra_roots=args.also_lint,
    )
    error_count = sum(
        1 for f in findings if f.severity is Severity.ERROR
    )
    warning_count = len(findings) - error_count
    failed = error_count > 0 or (args.strict and warning_count > 0)

    if args.format == "json":
        print(
            json.dumps(
                {
                    "ok": not failed,
                    "errors": error_count,
                    "warnings": warning_count,
                    "findings": [f.to_dict() for f in findings],
                },
                indent=2,
            )
        )
    else:
        if findings:
            print(render_findings(findings))
        print(
            f"repro.analysis: {error_count} error(s), "
            f"{warning_count} warning(s) — "
            + ("FAIL" if failed else "ok")
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

"""Plan-linter self-check: real planner output must lint clean.

``python -m repro.analysis`` does not only lint the *source tree*; it
also plans a corpus of representative bulk deletes — unique and
clustered secondary indexes, hash indexes, tight and roomy memory
budgets, every ``bd`` method, the horizontal fallback — and runs the
plan linter over each choice.  A planner change that starts emitting
an invariant-violating plan therefore fails the same gate as a lint
violation in the code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.plan_lint import lint_plan
from repro.catalog.database import Database
from repro.catalog.schema import Attribute, TableSchema
from repro.core.planner import choose_plan
from repro.core.plans import BdMethod


@dataclass(frozen=True)
class PlanCase:
    """One (schema shape, delete size, planner knobs) combination."""

    name: str
    unique_b: bool = False
    clustered_a: bool = False
    with_hash_index: bool = False
    memory_bytes: int = 64 * 1024
    n_deletes: int = 64
    record_count: int = 256
    prefer_method: Optional[BdMethod] = None
    force_vertical: bool = True


CASES: Tuple[PlanCase, ...] = (
    PlanCase("sort-merge-plain"),
    PlanCase("sort-merge-unique", unique_b=True),
    PlanCase("clustered-driving", clustered_a=True),
    PlanCase("clustered-unique", clustered_a=True, unique_b=True),
    PlanCase("hash-method", prefer_method=BdMethod.HASH),
    PlanCase(
        "hash-overflow-fallback",
        prefer_method=BdMethod.HASH,
        memory_bytes=4096,
        n_deletes=512,
    ),
    PlanCase(
        "tight-memory-unique",
        unique_b=True,
        memory_bytes=4096,
        n_deletes=512,
    ),
    PlanCase("partitioned", prefer_method=BdMethod.PARTITIONED_HASH),
    PlanCase("with-hash-index", with_hash_index=True, unique_b=True),
    PlanCase(
        "horizontal-fallback",
        n_deletes=1,
        record_count=4096,
        force_vertical=False,
    ),
)


def _build_case_db(case: PlanCase) -> Database:
    db = Database(page_size=512, memory_bytes=case.memory_bytes)
    schema = TableSchema.of(
        "R",
        [Attribute.int_("A"), Attribute.int_("B"), Attribute.int_("C")],
    )
    db.create_table(schema)
    db.load_table(
        "R",
        ((i, i * 3 + 1, i * 7 + 2) for i in range(case.record_count)),
    )
    db.create_index("R", "A", clustered=case.clustered_a)
    db.create_index("R", "B", unique=case.unique_b)
    if case.with_hash_index:
        db.create_hash_index("R", "C")
    else:
        db.create_index("R", "C")
    return db


def check_planner_output(
    errors_only: bool = True,
) -> List[Finding]:
    """Plan every case and lint the result; returns the findings.

    ``errors_only`` drops WARNING findings the planner legitimately
    produces (e.g. the delayed-unique warning under a tight memory
    budget) so the gate is about violated invariants, not trade-offs
    the planner documented in its notes.
    """
    findings: List[Finding] = []
    for case in CASES:
        db = _build_case_db(case)
        plan = choose_plan(
            db,
            "R",
            "A",
            case.n_deletes,
            prefer_method=case.prefer_method,
            force_vertical=case.force_vertical,
        )
        for finding in lint_plan(plan, db):
            if errors_only and finding.severity is not Severity.ERROR:
                continue
            findings.append(
                Finding(
                    finding.rule_id,
                    finding.severity,
                    f"{case.name}: {finding.node}",
                    finding.message,
                )
            )
    return findings


def iter_case_plans() -> Iterator[Tuple[PlanCase, Database, object]]:
    """(case, db, plan) triples — test helper for the pytest gate."""
    for case in CASES:
        db = _build_case_db(case)
        plan = choose_plan(
            db,
            "R",
            "A",
            case.n_deletes,
            prefer_method=case.prefer_method,
            force_vertical=case.force_vertical,
        )
        yield case, db, plan

"""Estimate-vs-actual drift over the planner self-check corpus.

The planner's cost formulas exist to place the horizontal/vertical
crossover where the executors actually put it; an estimate that drifts
far from measurement moves the crossover and silently picks the wrong
plan.  This module executes every :data:`repro.analysis.selfcheck.CASES`
plan on its case database and compares ``plan.estimated_ms`` with the
measured simulated time.

``ACCEPTED_DRIFT`` lists the cases where a >2x gap is *understood* and
documented (see ``docs/cost_model.md``, "Known estimate gaps") rather
than a formula bug; the pytest gate fails on any other case drifting
past 2x in either direction, so new gaps must be fixed or explicitly
accepted here and documented there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.selfcheck import CASES, _build_case_db
from repro.core.executor import bulk_delete
from repro.core.planner import choose_plan

#: case name -> short reason, mirrored in docs/cost_model.md.
ACCEPTED_DRIFT: Dict[str, str] = {
    "hash-overflow-fallback": (
        "4 KiB buffer: eviction write-backs interleave across files, "
        "turning sequential sweeps into random I/O the single-stream "
        "sweep model undercounts (~2.2x)"
    ),
    "tight-memory-unique": (
        "same sub-working-set buffer effect as hash-overflow-fallback "
        "(~2x); plan choice is unaffected — vertical still wins"
    ),
}

#: Estimates within this factor of measurement (either direction) pass.
MAX_RATIO = 2.0


@dataclass
class DriftRecord:
    """One corpus case: what the planner said vs what the run cost."""

    case: str
    strategy: str  # 'horizontal' | 'vertical'
    estimated_ms: float
    actual_ms: float

    @property
    def ratio(self) -> float:
        """actual / estimated; 1.0 is a perfect estimate."""
        if self.estimated_ms <= 0:
            return float("inf")
        return self.actual_ms / self.estimated_ms

    @property
    def within(self) -> bool:
        return 1.0 / MAX_RATIO <= self.ratio <= MAX_RATIO

    def render(self) -> str:
        flag = "ok" if self.within else (
            "accepted" if self.case in ACCEPTED_DRIFT else "DRIFT"
        )
        return (
            f"{self.case:<24} {self.strategy:<10} "
            f"est {self.estimated_ms:>9.1f} ms  "
            f"act {self.actual_ms:>9.1f} ms  "
            f"x{self.ratio:>5.2f}  {flag}"
        )


def measure_drift() -> List[DriftRecord]:
    """Execute each self-check case and record estimate vs actual."""
    records: List[DriftRecord] = []
    for case in CASES:
        db = _build_case_db(case)
        keys = list(range(case.n_deletes))
        plan = choose_plan(
            db,
            "R",
            "A",
            len(keys),
            prefer_method=case.prefer_method,
            force_vertical=case.force_vertical,
        )
        start_ms = db.clock.now_ms
        bulk_delete(db, "R", "A", keys, plan=plan)
        actual_ms = db.clock.now_ms - start_ms
        strategy = (
            "horizontal"
            if plan.table_step().method.value == "nested-loops"
            else "vertical"
        )
        records.append(
            DriftRecord(
                case=case.name,
                strategy=strategy,
                estimated_ms=plan.estimated_ms or 0.0,
                actual_ms=actual_ms,
            )
        )
    return records


def unexplained_drift(
    records: List[DriftRecord],
) -> List[DriftRecord]:
    """Cases outside the band and not in :data:`ACCEPTED_DRIFT`."""
    return [
        r for r in records
        if not r.within and r.case not in ACCEPTED_DRIFT
    ]


def format_drift_report(records: List[DriftRecord]) -> str:
    lines = ["planner estimate vs measured (self-check corpus):"]
    lines += [f"  {r.render()}" for r in records]
    bad = unexplained_drift(records)
    lines.append(
        f"  {len(records) - len(bad)}/{len(records)} within "
        f"{MAX_RATIO:.0f}x"
        + ("" if not bad else f"; {len(bad)} UNEXPLAINED")
    )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - convenience
    print(format_drift_report(measure_drift()))

"""AST lint enforcing the simulation invariants of ``src/repro``.

The reproduction's results are *deterministic simulated costs*: every
I/O goes through the buffer pool onto the simulated disk, every clock
is the :class:`~repro.storage.disk.SimClock`, and every random stream
is seeded.  Code that reaches for the host's wall clock, the shared
(unseeded) ``random`` module state, or the raw page API would silently
corrupt that determinism — so these are lint rules, not review notes:

* ``code/wall-clock`` — no ``time.time``/``perf_counter``/
  ``datetime.now`` & friends in simulation paths,
* ``code/unseeded-random`` — no module-level ``random.*`` calls (they
  share one unseeded global RNG) and no argument-less
  ``random.Random()``,
* ``code/raw-page-io`` — ``disk.read_page``/``write_page`` only inside
  ``repro/storage/`` (everything else goes through the
  :class:`~repro.storage.buffer.BufferPool` so caching is accounted),
* ``code/float-cost-eq`` — no ``==``/``!=`` between float cost
  estimates (``*_ms``, ``*_seconds``, ``*_minutes``, ``*cost*``),
* ``code/adhoc-metrics`` — no mutating *another* object's ``.stats``
  counters outside ``repro/storage/`` and ``repro/obs/``; metric
  emission goes through the :mod:`repro.obs` observer hooks,
* ``code/clock-rewind`` — ``SimClock.rewind_to`` exists solely so the
  lane scheduler can reposition simulated time between lanes; calling
  it anywhere outside ``repro/parallel/`` would let ordinary operators
  rewrite history,
* ``code/media-error-outside-media`` — the typed media-error family
  may only be raised inside ``repro/media/`` and ``repro/storage/``,
  so every media failure flows through the one retry/repair/quarantine
  policy layer,
* ``code/compaction-outside-lsm`` — ``LsmTree.compact_once`` /
  ``maybe_compact`` are run-selection internals; outside ``repro/lsm/``
  compactions are triggered only through the tree's public write and
  maintenance surface so the FADE policy stays in charge.

A deliberate exception carries a per-line pragma::

    wall = time.perf_counter()  # lint: allow(wall-clock)

with a neighbouring comment explaining the constraint.  For a call
spanning several lines, the pragma goes on the statement's *opening*
line and covers the whole statement (simple statements only — it never
bleeds into the body of a ``def``/``if``/``with``).  A test module
whose very purpose is exercising a raw surface can allow one rule for
the entire file::

    # lint: allow-file(raw-page-io)
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.analysis.findings import Finding, Severity

#: rule id -> one-line description (the catalogue; docs render this)
CODE_RULES: Dict[str, str] = {
    "code/wall-clock": (
        "simulation paths must use SimClock, never the host clock "
        "(time.time/perf_counter/monotonic, datetime.now/utcnow/today)"
    ),
    "code/unseeded-random": (
        "randomness must come from a seeded random.Random(seed) "
        "instance; module-level random.* calls and random.Random() "
        "share or create unseeded state"
    ),
    "code/raw-page-io": (
        "disk.read_page/write_page bypass the BufferPool's caching and "
        "accounting; only repro/storage/ may call them directly"
    ),
    "code/float-cost-eq": (
        "float cost estimates (*_ms, *_seconds, *_minutes, *cost*) "
        "must not be compared with == / != ; use ordering or a "
        "tolerance"
    ),
    "code/adhoc-metrics": (
        "operators must not poke another object's .stats counters "
        "directly; metric emission goes through the repro.obs observer "
        "hooks (a structure may still maintain its own self.stats)"
    ),
    "code/crash-outside-faults": (
        "SimulatedCrash may only be raised inside repro/faults/; crash "
        "injection goes through a FaultPlan + FaultInjector so every "
        "crash point is visible to the crash sweep and loses the "
        "buffer pool consistently"
    ),
    "code/clock-rewind": (
        "SimClock.rewind_to repositions simulated time between lanes; "
        "only the lane scheduler in repro/parallel/ may call it — "
        "anywhere else it rewrites history and corrupts every span "
        "and cost downstream"
    ),
    "code/media-error-outside-media": (
        "the MediaError family (ChecksumMismatch, TransientReadError, "
        "RetriesExhausted, QuarantinedPage) may only be raised inside "
        "repro/media/ and repro/storage/; anywhere else a media "
        "failure must surface through the verified read path so "
        "retry/repair/quarantine policy applies uniformly"
    ),
    "code/compaction-outside-lsm": (
        "compact_once/maybe_compact hand-pick LSM runs; outside "
        "repro/lsm/ compaction is reached only through the tree's "
        "public surface (put/delete/delete_range, flush_memtable, "
        "compact_all, delete_aware_compactions, lsm_bulk_delete) so "
        "the FADE picker and its accounting stay authoritative"
    ),
}

_WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
}
_WALL_CLOCK_NAMES = {
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns",
}

#: module-level functions of ``random`` that use the shared global RNG
_GLOBAL_RANDOM_FUNCS = {
    "random", "randint", "randrange", "randbytes", "choice", "choices",
    "shuffle", "sample", "uniform", "triangular", "gauss", "seed",
    "getrandbits", "betavariate", "expovariate", "gammavariate",
    "lognormvariate", "normalvariate", "paretovariate", "vonmisesvariate",
    "weibullvariate",
}

_RAW_IO_ATTRS = {"read_page", "write_page"}

#: LSM compaction internals: callable only inside ``repro/lsm/``.
_COMPACTION_ATTRS = {"compact_once", "maybe_compact"}

#: The typed media-error family (repro.errors).  CorruptLogError is
#: deliberately absent: it is a RecoveryError sibling raised by the WAL.
_MEDIA_ERROR_NAMES = {
    "MediaError", "ChecksumMismatch", "TransientReadError",
    "RetriesExhausted", "QuarantinedPage",
}

_COST_NAME = re.compile(
    r"(_ms|_seconds|_minutes)$|cost", re.IGNORECASE
)

_PRAGMA = re.compile(r"#\s*lint:\s*allow\(([^)]*)\)")
_FILE_PRAGMA = re.compile(r"#\s*lint:\s*allow-file\(([^)]*)\)")


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_cost_expr(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return bool(_COST_NAME.search(node.id))
    if isinstance(node, ast.Attribute):
        return bool(_COST_NAME.search(node.attr))
    return False


@dataclass
class _Visitor(ast.NodeVisitor):
    filename: str
    in_storage: bool
    #: inside repro/obs/ — the metrics layer itself is exempt from
    #: code/adhoc-metrics (it is the sanctioned emission path)
    in_obs: bool = False
    #: inside repro/faults/ — the injector is the one sanctioned place
    #: that raises SimulatedCrash
    in_faults: bool = False
    #: inside repro/parallel/ — the lane scheduler is the one
    #: sanctioned caller of SimClock.rewind_to
    in_parallel: bool = False
    #: inside repro/media/ — with repro/storage/, the sanctioned origin
    #: of the MediaError family
    in_media: bool = False
    #: inside repro/lsm/ — the one place compaction internals
    #: (compact_once/maybe_compact) may be called
    in_lsm: bool = False
    #: names bound by ``from time/datetime/random import X``
    clock_aliases: Set[str] = field(default_factory=set)
    random_aliases: Set[str] = field(default_factory=set)
    random_class_aliases: Set[str] = field(default_factory=set)
    findings: List[Finding] = field(default_factory=list)

    def _emit(self, rule: str, node: ast.AST, label: str, msg: str) -> None:
        self.findings.append(
            Finding(
                rule,
                Severity.ERROR,
                label,
                msg,
                file=self.filename,
                line=getattr(node, "lineno", None),
            )
        )

    # -- imports: track aliases so bare calls are caught too ----------
    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name in _WALL_CLOCK_NAMES:
                    self.clock_aliases.add(alias.asname or alias.name)
        elif node.module == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date"):
                    self.clock_aliases.add(
                        (alias.asname or alias.name) + ".now"
                    )
        elif node.module == "random":
            for alias in node.names:
                if alias.name in _GLOBAL_RANDOM_FUNCS:
                    self.random_aliases.add(alias.asname or alias.name)
                elif alias.name == "Random":
                    self.random_class_aliases.add(alias.asname or alias.name)
        self.generic_visit(node)

    # -- calls --------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        self._check_wall_clock(node, dotted)
        self._check_random(node, dotted)
        self._check_raw_io(node)
        self._check_clock_rewind(node)
        self._check_compaction(node)
        self.generic_visit(node)

    def _check_wall_clock(
        self, node: ast.Call, dotted: Optional[str]
    ) -> None:
        hit = dotted is not None and (
            dotted in _WALL_CLOCK_CALLS or dotted in self.clock_aliases
        )
        if hit:
            self._emit(
                "code/wall-clock",
                node,
                dotted or "<call>",
                f"{dotted}() reads the host clock; simulated time comes "
                "from db.clock (SimClock) so results stay deterministic",
            )

    def _check_random(self, node: ast.Call, dotted: Optional[str]) -> None:
        if dotted is None:
            return
        if (
            dotted.startswith("random.")
            and dotted.split(".", 1)[1] in _GLOBAL_RANDOM_FUNCS
        ) or dotted in self.random_aliases:
            self._emit(
                "code/unseeded-random",
                node,
                dotted,
                f"{dotted}() uses the module-global RNG, which is never "
                "seeded here; construct random.Random(seed) instead",
            )
            return
        is_random_ctor = dotted == "random.Random" or (
            dotted in self.random_class_aliases
        )
        if is_random_ctor and not node.args and not node.keywords:
            self._emit(
                "code/unseeded-random",
                node,
                dotted,
                "random.Random() without a seed is nondeterministic; "
                "pass an explicit seed",
            )

    def _check_raw_io(self, node: ast.Call) -> None:
        if self.in_storage:
            return
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _RAW_IO_ATTRS
        ):
            self._emit(
                "code/raw-page-io",
                node,
                _dotted(node.func) or node.func.attr,
                f".{node.func.attr}() bypasses the BufferPool; outside "
                "repro/storage/ every page access must be pinned "
                "through the pool so hits and evictions are accounted",
            )

    def _check_clock_rewind(self, node: ast.Call) -> None:
        if self.in_parallel:
            return
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "rewind_to"
        ):
            self._emit(
                "code/clock-rewind",
                node,
                _dotted(node.func) or node.func.attr,
                ".rewind_to() moves simulated time backwards; only the "
                "lane scheduler (repro/parallel/) may reposition the "
                "clock, and only between whole lanes of a region",
            )

    def _check_compaction(self, node: ast.Call) -> None:
        if self.in_lsm:
            return
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _COMPACTION_ATTRS
        ):
            self._emit(
                "code/compaction-outside-lsm",
                node,
                _dotted(node.func) or node.func.attr,
                f".{node.func.attr}() hand-picks LSM runs; outside "
                "repro/lsm/ trigger compaction through the tree's "
                "public surface (delete_aware_compactions, "
                "compact_all, or just the write path) so FADE stays "
                "in charge",
            )

    # -- stats mutations ----------------------------------------------
    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_adhoc_metrics(node, node.target)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_adhoc_metrics(node, target)
        self.generic_visit(node)

    def _check_adhoc_metrics(
        self, node: ast.AST, target: ast.expr
    ) -> None:
        """Flag ``other.stats.field op= ...`` outside storage/obs.

        An object updating its *own* counters (``self.stats.x += 1``)
        is the measured code maintaining its statistics — fine.
        Reaching into another object's stats (``db.disk.stats.reads
        += 1``) is ad-hoc metric emission that bypasses the observer
        and corrupts the accounting the spans reconcile against.
        Replacing a whole stats object (``db.disk.stats = DiskStats()``,
        a measurement reset) does not match: the target's *container*
        must be the ``.stats`` attribute itself.
        """
        if self.in_storage or self.in_obs:
            return
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Attribute)
            and target.value.attr == "stats"
        ):
            return
        base = target.value.value
        if isinstance(base, ast.Name) and base.id == "self":
            return
        self._emit(
            "code/adhoc-metrics",
            node,
            f"{_dotted(target) or target.attr}",
            "mutating another object's .stats bypasses repro.obs; "
            "emit through the observer hooks (db.obs / disk.observer) "
            "so span deltas and metric totals stay reconciled",
        )

    # -- raises -------------------------------------------------------
    def visit_Raise(self, node: ast.Raise) -> None:
        """Flag ``raise SimulatedCrash(...)`` outside ``repro/faults/``.

        A hand-rolled raise skips the injector: the crash point is
        invisible to the sweep, the buffer pool is not invalidated, and
        the observer never hears about it.  Crashes are injected by
        arming a :class:`~repro.faults.FaultInjector` with a plan.

        Also flags raising the :data:`_MEDIA_ERROR_NAMES` family
        outside ``repro/media/`` and ``repro/storage/``: media failures
        originate at the verified read path (or its policy layer) so
        retries, repair, and quarantine apply everywhere uniformly.
        """
        exc = node.exc
        target = exc.func if isinstance(exc, ast.Call) else exc
        dotted = _dotted(target) if target is not None else None
        name = dotted.split(".")[-1] if dotted is not None else None
        if name == "SimulatedCrash" and not self.in_faults:
            self._emit(
                "code/crash-outside-faults",
                node,
                dotted,
                "raise SimulatedCrash bypasses the fault injector; arm "
                "a FaultInjector(FaultPlan(...)) so the crash point is "
                "sweepable and the pool is invalidated consistently",
            )
        if (
            name in _MEDIA_ERROR_NAMES
            and not (self.in_media or self.in_storage)
        ):
            self._emit(
                "code/media-error-outside-media",
                node,
                dotted,
                f"raise {name} outside repro/media/ and repro/storage/ "
                "invents a media failure the retry/repair/quarantine "
                "policy never sees; surface it through the disk's "
                "verified read path or the MediaRecovery layer",
            )
        self.generic_visit(node)

    # -- comparisons --------------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_cost_expr(left) or _is_cost_expr(right):
                names = [
                    _dotted(side) or type(side).__name__
                    for side in (left, right)
                ]
                self._emit(
                    "code/float-cost-eq",
                    node,
                    " == ".join(names),
                    "cost estimates are floats; exact equality is "
                    "fragile — compare with <, >, or math.isclose",
                )
        self.generic_visit(node)


def _parse_pragma(match: "re.Match[str]") -> Set[str]:
    return {
        name.strip() for name in match.group(1).split(",")
        if name.strip()
    }


def _allowed_rules(
    lines: Sequence[str], tree: Optional[ast.Module] = None
) -> Dict[int, Set[str]]:
    """``line number -> rule names`` from per-line allow-pragmas.

    With the parsed ``tree``, a pragma on the *opening* line of a
    multi-line **simple** statement (a call split across lines, a long
    assignment) covers every line of that statement via ``end_lineno``.
    Compound statements (``def``/``class``/``if``/``with``/...) are
    excluded so a pragma on their header can never blanket their body.
    """
    allowed: Dict[int, Set[str]] = {}
    for i, line in enumerate(lines, start=1):
        match = _PRAGMA.search(line)
        if match:
            allowed.setdefault(i, set()).update(_parse_pragma(match))
    if tree is not None and allowed:
        for stmt in ast.walk(tree):
            if not isinstance(stmt, ast.stmt) or isinstance(
                stmt,
                (
                    ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                    ast.If, ast.For, ast.AsyncFor, ast.While, ast.With,
                    ast.AsyncWith, ast.Try, ast.Match,
                ),
            ):
                continue
            names = allowed.get(stmt.lineno)
            end = getattr(stmt, "end_lineno", None)
            if not names or end is None or end <= stmt.lineno:
                continue
            for covered in range(stmt.lineno + 1, end + 1):
                allowed.setdefault(covered, set()).update(names)
    return allowed


def _file_allowed_rules(lines: Sequence[str]) -> Set[str]:
    """Rules allowed for the whole module by ``allow-file`` pragmas."""
    allowed: Set[str] = set()
    for line in lines:
        match = _FILE_PRAGMA.search(line)
        if match:
            allowed.update(_parse_pragma(match))
    return allowed


def _matches(rule_id: str, names: Set[str]) -> bool:
    short = rule_id.split("/", 1)[-1]
    return rule_id in names or short in names or "*" in names


def _suppressed(
    finding: Finding,
    allowed: Dict[int, Set[str]],
    file_allowed: Optional[Set[str]] = None,
) -> bool:
    if file_allowed and _matches(finding.rule_id, file_allowed):
        return True
    if finding.line is None or finding.line not in allowed:
        return False
    return _matches(finding.rule_id, allowed[finding.line])


def lint_source(
    source: str,
    filename: str = "<string>",
    in_storage: bool = False,
    in_obs: bool = False,
    in_faults: bool = False,
    in_parallel: bool = False,
    in_media: bool = False,
    in_lsm: bool = False,
) -> List[Finding]:
    """Lint one module's source text; returns surviving findings."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [
            Finding(
                "code/syntax",
                Severity.ERROR,
                filename,
                f"cannot parse: {exc.msg}",
                file=filename,
                line=exc.lineno,
            )
        ]
    visitor = _Visitor(
        filename=filename, in_storage=in_storage, in_obs=in_obs,
        in_faults=in_faults, in_parallel=in_parallel, in_media=in_media,
        in_lsm=in_lsm,
    )
    visitor.visit(tree)
    lines = source.splitlines()
    allowed = _allowed_rules(lines, tree)
    file_allowed = _file_allowed_rules(lines)
    return [
        f for f in visitor.findings
        if not _suppressed(f, allowed, file_allowed)
    ]


def lint_tree(root: Path) -> List[Finding]:
    """Lint every ``*.py`` under ``root`` (the ``repro`` package dir).

    A file is "in storage" when any of its path components below
    ``root`` is the ``storage`` package — those modules implement the
    page API and may call it raw.
    """
    findings: List[Finding] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root)
        in_storage = "storage" in rel.parts[:-1]
        in_obs = "obs" in rel.parts[:-1]
        in_faults = "faults" in rel.parts[:-1]
        in_parallel = "parallel" in rel.parts[:-1]
        in_media = "media" in rel.parts[:-1]
        in_lsm = "lsm" in rel.parts[:-1]
        findings.extend(
            lint_source(
                path.read_text(),
                filename=str(rel),
                in_storage=in_storage,
                in_obs=in_obs,
                in_faults=in_faults,
                in_parallel=in_parallel,
                in_media=in_media,
                in_lsm=in_lsm,
            )
        )
    return findings


def default_root() -> Path:
    """The installed ``repro`` package directory."""
    import repro

    return Path(repro.__file__).resolve().parent

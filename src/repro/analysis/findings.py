"""Structured findings shared by the plan linter and the code linter.

Both checkers in :mod:`repro.analysis` report problems the same way: a
:class:`Finding` names the rule that fired, how bad it is, where it
fired (a plan step / DAG node for the plan linter, a ``file:line`` for
the code linter), and a human-readable message.  Tooling consumes the
JSON form (``python -m repro.analysis --format json``); the executor
and EXPLAIN consume the objects directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence


class Severity(enum.Enum):
    """How a finding affects the pipeline.

    ERROR findings make ``python -m repro.analysis`` exit nonzero and
    make :func:`repro.core.executor.execute_plan` reject the plan when
    ``validate=True``.  WARNING findings are reported (EXPLAIN shows
    them) but never block.  INFO findings are purely advisory.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Finding:
    """One rule violation (or advisory note)."""

    rule_id: str
    severity: Severity
    node: str  #: plan step / DAG node / "file:line" the rule fired on
    message: str
    file: Optional[str] = None
    line: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "node": self.node,
            "message": self.message,
        }
        if self.file is not None:
            out["file"] = self.file
        if self.line is not None:
            out["line"] = self.line
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Finding":
        """Inverse of :meth:`to_dict` (raises on malformed input)."""
        return cls(
            rule_id=data["rule"],
            severity=Severity(data["severity"]),
            node=data["node"],
            message=data["message"],
            file=data.get("file"),
            line=data.get("line"),
        )

    def sort_key(
        self,
    ) -> "tuple[str, bool, int, bool, str, str, str, str]":
        """Total report order: file, line, rule, node, then severity
        and message as tie-breakers.

        A *total* order (ties broken on every field) keeps JSON
        reports byte-stable across runs and input orderings, so
        reports diff cleanly.
        """
        return (
            self.file or "",
            self.file is not None,
            self.line or 0,
            self.line is not None,
            self.rule_id,
            self.node,
            self.severity.value,
            self.message,
        )

    def render(self) -> str:
        where = self.node
        if self.file is not None:
            where = f"{self.file}:{self.line or 0}"
        return f"{self.severity.value.upper()} {self.rule_id} @ {where}: " \
               f"{self.message}"


def errors(findings: Sequence[Finding]) -> List[Finding]:
    """The subset of ``findings`` that blocks execution."""
    return [f for f in findings if f.severity is Severity.ERROR]


def sort_findings(findings: Sequence[Finding]) -> List[Finding]:
    """``findings`` in stable report order (see :meth:`Finding.sort_key`)."""
    return sorted(findings, key=Finding.sort_key)


def render_findings(findings: Sequence[Finding]) -> str:
    """Multi-line text report (one line per finding)."""
    return "\n".join(f.render() for f in findings)

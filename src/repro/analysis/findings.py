"""Structured findings shared by the plan linter and the code linter.

Both checkers in :mod:`repro.analysis` report problems the same way: a
:class:`Finding` names the rule that fired, how bad it is, where it
fired (a plan step / DAG node for the plan linter, a ``file:line`` for
the code linter), and a human-readable message.  Tooling consumes the
JSON form (``python -m repro.analysis --format json``); the executor
and EXPLAIN consume the objects directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence


class Severity(enum.Enum):
    """How a finding affects the pipeline.

    ERROR findings make ``python -m repro.analysis`` exit nonzero and
    make :func:`repro.core.executor.execute_plan` reject the plan when
    ``validate=True``.  WARNING findings are reported (EXPLAIN shows
    them) but never block.  INFO findings are purely advisory.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Finding:
    """One rule violation (or advisory note)."""

    rule_id: str
    severity: Severity
    node: str  #: plan step / DAG node / "file:line" the rule fired on
    message: str
    file: Optional[str] = None
    line: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "node": self.node,
            "message": self.message,
        }
        if self.file is not None:
            out["file"] = self.file
        if self.line is not None:
            out["line"] = self.line
        return out

    def render(self) -> str:
        where = self.node
        if self.file is not None:
            where = f"{self.file}:{self.line or 0}"
        return f"{self.severity.value.upper()} {self.rule_id} @ {where}: " \
               f"{self.message}"


def errors(findings: Sequence[Finding]) -> List[Finding]:
    """The subset of ``findings`` that blocks execution."""
    return [f for f in findings if f.severity is Severity.ERROR]


def render_findings(findings: Sequence[Finding]) -> str:
    """Multi-line text report (one line per finding)."""
    return "\n".join(f.render() for f in findings)

"""Module-level call graph over the ``repro`` package, from the AST.

The per-file lint of :mod:`repro.analysis.code_lint` only sees *direct*
calls: a one-line helper wrapper defeats every confinement rule.  The
effect engine (:mod:`repro.analysis.effects.lattice`) needs the next
level up — who calls whom across the whole package — so this module
builds that graph statically:

* every ``def`` becomes a :class:`FunctionNode`, qualified as
  ``package.module.func``, ``package.module.Class.method``, or
  ``package.module.outer.<locals>.inner`` for closures,
* calls are resolved through module bindings (imports, including
  package ``__init__`` re-exports), class-qualified names for methods
  (``self.m()`` walks the class and its in-repo bases),
* attribute receivers are typed three ways, in order: parameter / local
  annotations (``disk: SimulatedDisk``), local constructor assignments
  (``tree = BLinkTree(...)``), and a small :data:`KNOWN_ALIASES` table
  for the engine's pervasive attribute idioms (``self.disk``,
  ``db.pool``, ``...clock``),
* anything still unresolved falls back conservatively: a method name
  defined by a handful of known classes resolves to *all* of them —
  unless the name is a common container/builtin method
  (:data:`AMBIGUOUS_METHODS`), where that union would connect
  ``somelist.append`` to ``WriteAheadLog.append`` and drown the graph.
  Such calls are counted per function (``FunctionNode.unresolved``) so
  the analysis can report how much it did not see.

Lambdas are attributed to their enclosing function (their bodies are
rarely more than an expression here); module-level statements (import
time) are outside the graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Attribute name -> class name, for receivers neither annotations nor
#: local assignments can type.  These are the engine's idioms: the
#: attribute is named after the one structure it holds.
KNOWN_ALIASES: Dict[str, str] = {
    "disk": "SimulatedDisk",
    "clock": "SimClock",
    "pool": "BufferPool",
    "wal": "WriteAheadLog",
    "log": "WriteAheadLog",
    "tree": "BLinkTree",
    "heap": "HeapFile",
    "hash_index": "HashIndex",
    "fault_injector": "FaultInjector",
    "injector": "FaultInjector",
    "media": "MediaRecovery",
    "observer": "Observer",
    "obs": "Observer",
    "metrics": "MetricsRegistry",
    "tracer": "Tracer",
    "scheduler": "LaneScheduler",
    "db": "Database",
    "catalog": "Catalog",
    "sorter": "ExternalSorter",
    "side_file": "SideFile",
    "sidefile": "SideFile",
    "locks": "LockManager",
    "serializer": "RecordSerializer",
    "freespace": "FreeSpaceMap",
}

#: Method names shared with builtin containers / file objects: the
#: resolve-by-name fallback must not connect ``somelist.append`` to
#: ``WriteAheadLog.append``.  Calls on these names resolve only through
#: a typed receiver (annotation, constructor assignment, alias table).
AMBIGUOUS_METHODS: Set[str] = {
    "append", "add", "extend", "insert", "remove", "pop", "clear",
    "update", "get", "setdefault", "keys", "values", "items", "copy",
    "sort", "reverse", "count", "index", "join", "split", "strip",
    "startswith", "endswith", "format", "encode", "decode", "read",
    "write", "readline", "readlines", "close", "flush", "seek", "tell",
    "popitem", "discard", "union", "intersection", "difference",
    "group", "match", "search", "sub", "findall", "set", "next",
}

#: Resolve-by-name fallback gives up above this many candidate classes:
#: a name that common carries no signal.
FALLBACK_LIMIT = 4


@dataclass
class FunctionNode:
    """One ``def`` in the package, with its resolved outgoing calls."""

    qualname: str
    module: str
    name: str
    cls: Optional[str]  #: class qualname when this is a method
    file: str
    line: int
    #: Effects seeded directly in this body (filled by the lattice).
    intrinsic: Set[str] = field(default_factory=set)
    #: Human-readable reasons per intrinsic effect (for witnesses).
    intrinsic_why: Dict[str, str] = field(default_factory=dict)
    #: Resolved callee qualnames.
    calls: Set[str] = field(default_factory=set)
    #: Dynamic calls nothing could resolve (callbacks, builtins with
    #: ambiguous names) — the graph's honesty counter.
    unresolved: int = 0
    #: Transitive effect set (filled by the lattice fixpoint).
    effects: Set[str] = field(default_factory=set)
    #: Return-annotation class *name*, for local type inference at
    #: call sites (``t = db.table("R")`` types ``t`` as TableInfo).
    returns_name: Optional[str] = None


@dataclass
class ClassNode:
    """One ``class`` with its methods and in-repo bases."""

    qualname: str
    module: str
    name: str
    bases: List[str] = field(default_factory=list)  #: base *names*
    methods: Dict[str, str] = field(default_factory=dict)


@dataclass
class LaneDispatch:
    """One ``LaneTask(...)`` construction site.

    ``entry`` kinds:

    * ``"function"`` — ``run=`` referenced a function directly,
    * ``"factory"`` — ``run=`` called a factory; the dispatched code is
      the factory's closures (``factory.<locals>.*``),
    * ``"unresolved"`` — a callable the graph cannot see through.
    """

    owner: str  #: qualname of the function constructing the task
    file: str
    line: int
    kind: str
    entry: Optional[str]  #: function or factory qualname


class CallGraph:
    """The whole-package graph: functions, classes, lane dispatches."""

    def __init__(self, package: str) -> None:
        self.package = package
        self.functions: Dict[str, FunctionNode] = {}
        self.classes: Dict[str, ClassNode] = {}
        #: class *name* -> class qualnames (for alias/base resolution)
        self.class_names: Dict[str, List[str]] = {}
        #: method name -> defining function qualnames (fallback index)
        self.method_index: Dict[str, List[str]] = {}
        #: module -> {local name -> fully qualified target}
        self.bindings: Dict[str, Dict[str, str]] = {}
        self.lane_dispatches: List[LaneDispatch] = []

    # -- lookups -------------------------------------------------------
    def resolve_binding(self, dotted: str, hops: int = 8) -> str:
        """Follow import re-export chains (``repro.faults.FaultInjector``
        -> ``repro.faults.injector.FaultInjector``) to a terminal name."""
        seen = set()
        current = dotted
        while hops > 0 and current not in seen:
            seen.add(current)
            hops -= 1
            if current in self.functions or current in self.classes:
                return current
            module, _, leaf = current.rpartition(".")
            target = self.bindings.get(module, {}).get(leaf)
            if target is None:
                return current
            current = target
        return current

    def method_of(self, class_qualname: str, method: str) -> Optional[str]:
        """Resolve ``method`` on a class, walking in-repo bases."""
        seen: Set[str] = set()
        stack = [class_qualname]
        while stack:
            cq = stack.pop()
            if cq in seen:
                continue
            seen.add(cq)
            cls = self.classes.get(cq)
            if cls is None:
                continue
            if method in cls.methods:
                return cls.methods[method]
            for base in cls.bases:
                for candidate in self.class_names.get(base, []):
                    stack.append(candidate)
        return None

    def class_by_name(self, name: str) -> Optional[str]:
        candidates = self.class_names.get(name, [])
        return candidates[0] if len(candidates) == 1 else None

    def callees(self, qualname: str) -> Set[str]:
        node = self.functions.get(qualname)
        return node.calls if node is not None else set()

    def nested_functions(self, qualname: str) -> List[str]:
        prefix = qualname + ".<locals>."
        return [q for q in self.functions if q.startswith(prefix)]

    def to_dot(self) -> str:
        """GraphViz rendering (``repro effects --dot``)."""
        lines = ["digraph effects {", "  rankdir=LR;", "  node [shape=box];"]
        for node in sorted(self.functions.values(), key=lambda n: n.qualname):
            effects = ",".join(sorted(node.effects))
            label = node.qualname[len(self.package) + 1:]
            lines.append(
                f'  "{node.qualname}" [label="{label}'
                + (f'\\n{{{effects}}}' if effects else "")
                + '"];'
            )
            for callee in sorted(node.calls):
                lines.append(f'  "{node.qualname}" -> "{callee}";')
        lines.append("}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# construction
# ---------------------------------------------------------------------------

def build_callgraph(root: Path, package: Optional[str] = None) -> CallGraph:
    """Parse every ``*.py`` under ``root`` and build the graph.

    ``root`` is the package directory (``src/repro``); ``package``
    defaults to its basename.  Two passes: declarations and bindings
    first, then call resolution (which needs the full class index).
    """
    root = Path(root)
    pkg = package or root.name
    graph = CallGraph(pkg)
    modules: List[Tuple[str, Path, ast.Module]] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root)
        module = _module_name(pkg, rel)
        try:
            tree = ast.parse(path.read_text(), filename=str(rel))
        except SyntaxError:
            continue  # the code lint reports this; nothing to graph
        modules.append((module, rel, tree))
        _collect_declarations(graph, module, str(rel), tree)
    for module, rel, tree in modules:
        _resolve_module(graph, module, str(rel), tree)
    return graph


def _module_name(pkg: str, rel: Path) -> str:
    parts = list(rel.parts)
    parts[-1] = parts[-1][:-3]  # strip .py
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join([pkg] + parts) if parts else pkg


# -- pass 1: declarations ---------------------------------------------------

def _collect_declarations(
    graph: CallGraph, module: str, file: str, tree: ast.Module
) -> None:
    bindings = graph.bindings.setdefault(module, {})

    def add_function(
        node: ast.AST, scope: List[str], cls: Optional[str]
    ) -> str:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        qual = ".".join([module] + scope + [node.name])
        graph.functions[qual] = FunctionNode(
            qualname=qual,
            module=module,
            name=node.name,
            cls=cls,
            file=file,
            line=node.lineno,
            returns_name=_annotation_name(node.returns),
        )
        return qual

    def walk_body(
        body: Sequence[ast.stmt], scope: List[str], cls: Optional[str]
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = add_function(stmt, scope, cls)
                if cls is not None and not scope[-1:] == ["<locals>"]:
                    cls_node = graph.classes[cls]
                    cls_node.methods.setdefault(stmt.name, qual)
                    graph.method_index.setdefault(stmt.name, []).append(qual)
                if not scope and cls is None:
                    bindings[stmt.name] = qual
                walk_body(
                    stmt.body,
                    scope + [stmt.name, "<locals>"],
                    None,
                )
            elif isinstance(stmt, ast.ClassDef):
                cq = ".".join([module] + scope + [stmt.name])
                graph.classes[cq] = ClassNode(
                    qualname=cq,
                    module=module,
                    name=stmt.name,
                    bases=[
                        b.id if isinstance(b, ast.Name) else
                        (b.attr if isinstance(b, ast.Attribute) else "")
                        for b in stmt.bases
                    ],
                )
                graph.class_names.setdefault(stmt.name, []).append(cq)
                if not scope:
                    bindings[stmt.name] = cq
                walk_body(stmt.body, scope + [stmt.name], cq)
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    local = alias.asname or alias.name.split(".")[0]
                    bindings[local] = (
                        alias.name if alias.asname else
                        alias.name.split(".")[0]
                    )
            elif isinstance(stmt, ast.ImportFrom):
                if stmt.level:
                    # For a package __init__ the module name *is* the
                    # package, so one level of "up" is already applied.
                    up = stmt.level - (
                        1 if file.endswith("__init__.py") else 0
                    )
                    base = (
                        module.rsplit(".", up)[0] if up > 0 else module
                    )
                    src = f"{base}.{stmt.module}" if stmt.module else base
                else:
                    src = stmt.module or ""
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    bindings[alias.asname or alias.name] = (
                        f"{src}.{alias.name}" if src else alias.name
                    )
            elif isinstance(stmt, (ast.If, ast.Try)):
                walk_body(list(ast.iter_child_nodes(stmt)), scope, cls)  # type: ignore[arg-type]
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                if not scope and cls is None:
                    for name in _assigned_names(stmt):
                        bindings.setdefault(name, f"{module}.{name}")

    walk_body(tree.body, [], None)


def _annotation_name(annotation: Optional[ast.expr]) -> Optional[str]:
    """Trailing class name of a return/param annotation, if any."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        text = annotation.value.strip().strip('"').split("[")[0]
        return text.split(".")[-1] or None
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    return None


def _assigned_names(stmt: ast.stmt) -> List[str]:
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, ast.AnnAssign):
        targets = [stmt.target]
    return [t.id for t in targets if isinstance(t, ast.Name)]


# -- pass 2: call resolution ------------------------------------------------

class _FunctionResolver(ast.NodeVisitor):
    """Resolve every call in one function body (closures excluded —
    they are their own :class:`FunctionNode`)."""

    def __init__(
        self,
        graph: CallGraph,
        module: str,
        node: FunctionNode,
        fn_ast: ast.AST,
        cls: Optional[str],
    ) -> None:
        self.graph = graph
        self.module = module
        self.node = node
        self.cls = cls
        #: local name -> class qualname (annotations + ctor assignments)
        self.local_types: Dict[str, str] = {}
        #: function-local imports (deferred imports inside bodies)
        self.local_bindings: Dict[str, str] = {}
        assert isinstance(fn_ast, (ast.FunctionDef, ast.AsyncFunctionDef))
        self._seed_param_types(fn_ast)

    # -- typing locals -------------------------------------------------
    def _seed_param_types(
        self, fn: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> None:
        args = list(fn.args.args) + list(fn.args.kwonlyargs)
        if fn.args.vararg:
            args.append(fn.args.vararg)
        for arg in args:
            cq = self._annotation_class(arg.annotation)
            if cq is not None:
                self.local_types[arg.arg] = cq

    def _annotation_class(
        self, annotation: Optional[ast.expr]
    ) -> Optional[str]:
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            name: Optional[str] = annotation.value.strip().split("[")[0]
        elif isinstance(annotation, ast.Name):
            name = annotation.id
        elif isinstance(annotation, ast.Attribute):
            name = annotation.attr
        elif isinstance(annotation, ast.Subscript):
            # Optional[SimulatedDisk] / "Optional[X]" — unwrap one level.
            inner = annotation.slice
            if isinstance(inner, ast.Name):
                name = inner.id
            elif isinstance(inner, ast.Attribute):
                name = inner.attr
            else:
                name = None
        else:
            name = None
        if not name:
            return None
        name = name.split(".")[-1].strip('"')
        return self._class_for_name(name)

    def _class_for_name(self, name: str) -> Optional[str]:
        bound = self._binding(name)
        if bound is not None:
            resolved = self.graph.resolve_binding(bound)
            if resolved in self.graph.classes:
                return resolved
        return self.graph.class_by_name(name)

    # -- statements that type locals -----------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        cq = self._value_class(node.value)
        if cq is not None:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.local_types[target.id] = cq
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            cq = self._annotation_class(node.annotation) or (
                self._value_class(node.value) if node.value else None
            )
            if cq is not None:
                self.local_types[node.target.id] = cq
        self.generic_visit(node)

    def visit_withitem(self, node: ast.withitem) -> None:
        if isinstance(node.optional_vars, ast.Name):
            cq = self._value_class(node.context_expr)
            if cq is not None:
                self.local_types[node.optional_vars.id] = cq
        self.generic_visit(node)

    def _value_class(self, value: Optional[ast.expr]) -> Optional[str]:
        """Class of an assigned value: a constructor call or an aliased
        attribute chain (``db.disk``)."""
        if isinstance(value, ast.Call):
            callee = self._resolve_callable(value.func)
            if callee is None:
                return None
            if callee in self.graph.classes:
                return callee
            fn = self.graph.functions.get(callee)
            if fn is not None and fn.returns_name:
                return self._class_for_name(fn.returns_name)
            return None
        if isinstance(value, ast.Attribute):
            return self._receiver_class(value)
        if isinstance(value, ast.Name):
            return self.local_types.get(value.id)
        return None

    # -- function-local (deferred) imports -----------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            self.local_bindings[local] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:
            return  # no relative imports in this codebase
        src = node.module or ""
        for alias in node.names:
            if alias.name == "*":
                continue
            self.local_bindings[alias.asname or alias.name] = (
                f"{src}.{alias.name}" if src else alias.name
            )

    def _binding(self, name: str) -> Optional[str]:
        local = self.local_bindings.get(name)
        if local is not None:
            return local
        return self.graph.bindings.get(self.module, {}).get(name)

    # -- skip nested defs (they are separate nodes) --------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    # Lambdas stay attributed to this function.

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        target = self._resolve_callable(node.func)
        if target is not None:
            if target in self.graph.classes:
                self._note_lane_dispatch(node, target)
                init = self.graph.method_of(target, "__init__")
                if init is not None:
                    self.node.calls.add(init)
            elif target in self.graph.functions:
                self.node.calls.add(target)
        elif isinstance(node.func, ast.Attribute):
            self._fallback_method(node.func.attr)
        self.generic_visit(node)

    def _resolve_callable(self, func: ast.expr) -> Optional[str]:
        """Qualname of a called function/class, or None."""
        graph = self.graph
        if isinstance(func, ast.Name):
            bound = self._binding(func.id)
            if bound is None:
                return None
            resolved = graph.resolve_binding(bound)
            if resolved in graph.functions or resolved in graph.classes:
                return resolved
            return None
        if isinstance(func, ast.Attribute):
            method = func.attr
            receiver = func.value
            # Module alias: `mod.func(...)`.
            if isinstance(receiver, ast.Name):
                bound = self._binding(receiver.id)
                if bound is not None:
                    dotted = graph.resolve_binding(f"{bound}.{method}")
                    if dotted in graph.functions or dotted in graph.classes:
                        return dotted
                    # Class reference: `RID.unpack(...)`.
                    resolved = graph.resolve_binding(bound)
                    if resolved in graph.classes:
                        return graph.method_of(resolved, method)
            cq = self._receiver_class(receiver)
            if cq is not None:
                resolved_method = graph.method_of(cq, method)
                if resolved_method is not None:
                    return resolved_method
            return None
        return None

    def _receiver_class(self, receiver: ast.expr) -> Optional[str]:
        """Class of an attribute receiver, via self/locals/aliases."""
        if isinstance(receiver, ast.Name):
            if receiver.id in ("self", "cls") and self.cls is not None:
                return self.cls
            local = self.local_types.get(receiver.id)
            if local is not None:
                return local
            alias = KNOWN_ALIASES.get(receiver.id)
            if alias is not None:
                return self.graph.class_by_name(alias)
            return None
        if isinstance(receiver, ast.Attribute):
            alias = KNOWN_ALIASES.get(receiver.attr)
            if alias is not None:
                return self.graph.class_by_name(alias)
            return None
        if isinstance(receiver, ast.Call):
            # Fluent style: `BoundedHashSet(n).build(...)`.
            return self._value_class(receiver)
        return None

    def _fallback_method(self, method: str) -> None:
        """Type-blind fallback: resolve by method name across all known
        classes, unless the name is container-ambiguous."""
        if method in AMBIGUOUS_METHODS:
            self.node.unresolved += 1
            return
        candidates = self.graph.method_index.get(method, [])
        if 0 < len(candidates) <= FALLBACK_LIMIT:
            self.node.calls.update(candidates)
        else:
            self.node.unresolved += 1

    # -- lane dispatch sites -------------------------------------------
    def _note_lane_dispatch(self, node: ast.Call, target: str) -> None:
        cls = self.graph.classes.get(target)
        if cls is None or cls.name != "LaneTask":
            return
        run_arg: Optional[ast.expr] = None
        for kw in node.keywords:
            if kw.arg == "run":
                run_arg = kw.value
        if run_arg is None and len(node.args) >= 2:
            run_arg = node.args[1]
        kind, entry = "unresolved", None
        if run_arg is not None:
            if isinstance(run_arg, (ast.Name, ast.Attribute)):
                resolved = self._resolve_callable(run_arg)
                if resolved is None and isinstance(run_arg, ast.Attribute):
                    cq = self._receiver_class(run_arg.value)
                    if cq is not None:
                        resolved = self.graph.method_of(cq, run_arg.attr)
                if resolved is not None:
                    kind, entry = "function", resolved
            elif isinstance(run_arg, ast.Call):
                factory = self._resolve_callable(run_arg.func)
                if factory is not None and factory in self.graph.functions:
                    kind, entry = "factory", factory
            elif isinstance(run_arg, ast.Lambda):
                # The lambda's body is attributed to the constructing
                # function; analyze from there.
                kind, entry = "function", self.node.qualname
        self.graph.lane_dispatches.append(
            LaneDispatch(
                owner=self.node.qualname,
                file=self.node.file,
                line=node.lineno,
                kind=kind,
                entry=entry,
            )
        )


def _resolve_module(
    graph: CallGraph, module: str, file: str, tree: ast.Module
) -> None:
    """Run the resolver over every function declared in ``module``."""

    def walk(
        body: Sequence[ast.stmt], scope: List[str], cls: Optional[str]
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = ".".join([module] + scope + [stmt.name])
                node = graph.functions.get(qual)
                if node is not None:
                    resolver = _FunctionResolver(
                        graph, module, node, stmt, cls
                    )
                    for child in stmt.body:
                        resolver.visit(child)
                walk(stmt.body, scope + [stmt.name, "<locals>"], cls)
            elif isinstance(stmt, ast.ClassDef):
                cq = ".".join([module] + scope + [stmt.name])
                walk(stmt.body, scope + [stmt.name], cq)
            elif isinstance(stmt, (ast.If, ast.Try)):
                walk(list(ast.iter_child_nodes(stmt)), scope, cls)  # type: ignore[arg-type]

    walk(tree.body, [], None)

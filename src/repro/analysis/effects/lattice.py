"""Effect inference over the call graph: seed, propagate, witness.

Every function gets an *effect set* drawn from a fixed lattice of
atoms (:data:`EFFECTS`).  Effects enter the graph two ways:

* **primitive effects** — the engine's ground-truth mutators, assigned
  by qualified name (:data:`PRIMITIVE_EFFECTS`): the simulated disk's
  page I/O, the WAL append, the clock's advance/rewind, the catalog's
  DDL surface.  A call resolved to one of these functions inherits its
  effect transitively, no matter how many helper wrappers sit between.
* **syntactic effects** — patterns visible in a single body
  (:class:`_IntrinsicVisitor`): ``raise SimulatedCrash``, raising the
  media-error family, host-clock reads, global-RNG use, mutating a
  foreign ``.stats``, writing a module-level name.  These mirror the
  direct-call lint rules of :mod:`repro.analysis.code_lint` — which
  stay as the fast first line — but here they become *sources* whose
  effects flow to every transitive caller.

Propagation runs to a fixpoint with **barriers**
(:data:`DEFAULT_BARRIERS`): the sanctioned delivery mechanisms absorb
an effect instead of exporting it.  ``SimulatedDisk.read_page`` raising
``TransientReadError`` is the *designed* fault surface — every function
that reads a page must not inherit ``media_error.raise`` from it, or
the contract table would flag the whole engine.  A barrier absorbs
only the listed effects; everything else still flows through.

:func:`witness_chain` reconstructs, for one ``(function, effect)``
pair, the shortest call chain to a function that *introduces* the
effect — that chain is the finding message the contract engine reports.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.analysis.effects.callgraph import CallGraph, FunctionNode

#: The effect lattice (a powerset; these are its atoms).
EFFECTS: FrozenSet[str] = frozenset(
    {
        "disk.read",
        "disk.write",
        "wal.append",
        "clock.advance",
        "clock.rewind",
        "crash.raise",
        "media_error.raise",
        "rng",
        "wall_clock",
        "metrics.mutate",
        "global.mutate",
        "catalog.mutate",
        "lsm.compact",
    }
)

#: Ground-truth effect assignment by qualified name.  Key suffixes are
#: matched against function qualnames (endswith, at a dot boundary), so
#: the table works for any root package name.
PRIMITIVE_EFFECTS: Dict[str, FrozenSet[str]] = {
    "storage.disk.SimulatedDisk.read_page": frozenset({"disk.read"}),
    "storage.disk.SimulatedDisk.write_page": frozenset({"disk.write"}),
    "storage.disk.SimulatedDisk.allocate_page": frozenset({"disk.write"}),
    "storage.disk.SimulatedDisk.free_page": frozenset({"disk.write"}),
    "storage.disk.SimClock.advance_ms": frozenset({"clock.advance"}),
    "storage.disk.SimClock.rewind_to": frozenset({"clock.rewind"}),
    "recovery.wal.WriteAheadLog.append": frozenset({"wal.append"}),
    # The catalog's DDL surface: anything that changes which structures
    # exist (or their online state) mutates shared metadata.
    "catalog.database.Database.create_table": frozenset({"catalog.mutate"}),
    "catalog.database.Database.drop_table": frozenset({"catalog.mutate"}),
    "catalog.database.Database.create_index": frozenset({"catalog.mutate"}),
    "catalog.database.Database.create_hash_index": frozenset(
        {"catalog.mutate"}
    ),
    "catalog.database.Database.drop_index": frozenset({"catalog.mutate"}),
    "catalog.catalog.Catalog.add_table": frozenset({"catalog.mutate"}),
    "catalog.catalog.Catalog.drop_table": frozenset({"catalog.mutate"}),
    "catalog.catalog.TableInfo.add_index": frozenset({"catalog.mutate"}),
    "catalog.catalog.TableInfo.drop_index": frozenset({"catalog.mutate"}),
    "catalog.catalog.IndexInfo.set_offline": frozenset({"catalog.mutate"}),
    "catalog.catalog.IndexInfo.set_online": frozenset({"catalog.mutate"}),
    # LSM compaction rewrites runs wholesale; scheduling one is an
    # effect so the contract table can confine it to repro/lsm/.
    "lsm.tree.LsmTree.compact_once": frozenset({"lsm.compact"}),
}

#: Sanctioned absorption points: ``qualname suffix -> effects that do
#: NOT propagate to callers``.  Each is the one designed mechanism for
#: delivering that effect; see the module docstring and
#: ``docs/static_analysis.md`` for the rationale per entry.
DEFAULT_BARRIERS: Dict[str, FrozenSet[str]] = {
    # Injected crashes and media faults surface *at the device*; the
    # callers' contract is with the verified read/write path, not with
    # the injector behind it.
    "storage.disk.SimulatedDisk.read_page": frozenset(
        {"crash.raise", "media_error.raise"}
    ),
    "storage.disk.SimulatedDisk.write_page": frozenset(
        {"crash.raise", "media_error.raise"}
    ),
    "storage.disk.SimulatedDisk.allocate_page": frozenset(
        {"crash.raise", "media_error.raise"}
    ),
    "storage.disk.SimulatedDisk.free_page": frozenset(
        {"crash.raise", "media_error.raise"}
    ),
    # WAL forces are the other injectable durable event.
    "recovery.wal.WriteAheadLog.append": frozenset({"crash.raise"}),
    # The injector's hook methods are the crash-point delivery API:
    # instrumented code (recovery staging, redo replay) calls them so
    # sweeps can kill it mid-operation.  Calling a hook is sanctioned
    # everywhere; raising SimulatedCrash directly is not.
    "faults.injector.FaultInjector.stage": frozenset({"crash.raise"}),
    "faults.injector.FaultInjector.redo_record": frozenset(
        {"crash.raise"}
    ),
    "faults.injector.FaultInjector.on_wal_append": frozenset(
        {"crash.raise"}
    ),
    "faults.injector.FaultInjector.on_page_read": frozenset(
        {"crash.raise"}
    ),
    "faults.injector.FaultInjector.on_page_write": frozenset(
        {"crash.raise"}
    ),
    # The scrub gate's QuarantinedPage re-raise is its contract: "you
    # asked for a verified-clean disk and it is not".
    "media.scrub.require_scrubbed": frozenset({"media_error.raise"}),
    # The bench harness is the sanctioned host-time consumer: it
    # *reports* wall-clock runtimes, simulated results never depend on
    # them.
    "bench.harness.run_approach": frozenset({"wall_clock"}),
    # The retry/repair/quarantine policy layer terminates media faults;
    # its typed aborts (RetriesExhausted, QuarantinedPage) are the
    # sanctioned failure surface for everyone above the pool.
    "media.retry.MediaRecovery.read": frozenset({"media_error.raise"}),
    # run_region is the one sanctioned clock-repositioning surface: the
    # rewind happens only between whole lanes, under the scheduler's
    # reconciliation invariants.
    "parallel.lanes.LaneScheduler.run_region": frozenset({"clock.rewind"}),
    # The LSM tree's public write/maintenance surface absorbs the
    # compactions it schedules internally: callers get upsert/delete/
    # vacuum semantics, never a handle on run selection.  Reaching
    # compact_once any other way violates effect/lsm-compaction-
    # confined.
    "lsm.tree.LsmTree.put": frozenset({"lsm.compact"}),
    "lsm.tree.LsmTree.delete": frozenset({"lsm.compact"}),
    "lsm.tree.LsmTree.delete_range": frozenset({"lsm.compact"}),
    "lsm.tree.LsmTree.flush_memtable": frozenset({"lsm.compact"}),
    "lsm.tree.LsmTree.compact_all": frozenset({"lsm.compact"}),
    "lsm.tree.LsmTree.delete_aware_compactions": frozenset(
        {"lsm.compact"}
    ),
    "lsm.engine.lsm_bulk_delete": frozenset({"lsm.compact"}),
}

_WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
}

_GLOBAL_RANDOM_FUNCS = {
    "random", "randint", "randrange", "randbytes", "choice", "choices",
    "shuffle", "sample", "uniform", "triangular", "gauss", "seed",
    "getrandbits",
}

_MEDIA_ERROR_NAMES = {
    "MediaError", "ChecksumMismatch", "TransientReadError",
    "RetriesExhausted", "QuarantinedPage",
}


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _IntrinsicVisitor(ast.NodeVisitor):
    """Seed syntactic effects for one function body.

    ``module_names`` are the module's top-level bindings: a store into
    one of them (directly under ``global``, or through a subscript /
    attribute on one) is a ``global.mutate``.
    """

    def __init__(self, node: FunctionNode, module_names: Set[str]) -> None:
        self.node = node
        self.module_names = module_names
        self.locals: Set[str] = set()
        self.globals_declared: Set[str] = set()

    def _seed(self, effect: str, why: str) -> None:
        self.node.intrinsic.add(effect)
        self.node.intrinsic_why.setdefault(effect, why)

    # -- scope tracking ------------------------------------------------
    def visit_Global(self, node: ast.Global) -> None:
        self.globals_declared.update(node.names)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs are their own FunctionNode

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None:
            if dotted in _WALL_CLOCK_CALLS:
                self._seed("wall_clock", f"calls {dotted}()")
            if (
                dotted.startswith("random.")
                and dotted.split(".", 1)[1] in _GLOBAL_RANDOM_FUNCS
            ):
                self._seed("rng", f"calls module-global {dotted}()")
            if (
                dotted == "random.Random"
                and not node.args
                and not node.keywords
            ):
                self._seed("rng", "constructs unseeded random.Random()")
        self.generic_visit(node)

    # -- raises --------------------------------------------------------
    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        target = exc.func if isinstance(exc, ast.Call) else exc
        dotted = _dotted(target) if target is not None else None
        name = dotted.split(".")[-1] if dotted else None
        if name == "SimulatedCrash":
            self._seed("crash.raise", "raises SimulatedCrash")
        elif name in _MEDIA_ERROR_NAMES:
            self._seed("media_error.raise", f"raises {name}")
        self.generic_visit(node)

    # -- stores --------------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store(node.target, augmented=True)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_store(node.target)
        self.generic_visit(node)

    def _check_store(
        self, target: ast.expr, augmented: bool = False
    ) -> None:
        # foreign `.stats` mutation (the adhoc-metrics shape)
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Attribute)
            and target.value.attr == "stats"
            and not (
                isinstance(target.value.value, ast.Name)
                and target.value.value.id == "self"
            )
        ):
            self._seed(
                "metrics.mutate",
                f"mutates foreign counters "
                f"{_dotted(target) or target.attr}",
            )
        # module-global mutation
        root = target
        via_container = False
        while isinstance(root, (ast.Subscript, ast.Attribute)):
            root = root.value
            via_container = True
        if isinstance(root, ast.Name):
            name = root.id
            if not via_container:
                if name in self.globals_declared:
                    self._seed(
                        "global.mutate",
                        f"assigns module global {name!r}",
                    )
                elif not augmented:
                    self.locals.add(name)
                elif name in self.module_names and name not in self.locals:
                    self._seed(
                        "global.mutate",
                        f"augments module-level name {name!r}",
                    )
            elif (
                name in self.module_names
                and name not in self.locals
                and name != "self"
            ):
                self._seed(
                    "global.mutate",
                    f"writes into module-level container {name!r}",
                )


def qual_suffix_matches(qualname: str, suffix: str) -> bool:
    """``qualname`` ends with ``suffix`` at a dot boundary."""
    return qualname == suffix or qualname.endswith("." + suffix)


def _suffix_lookup(
    table: Mapping[str, FrozenSet[str]], qualname: str
) -> FrozenSet[str]:
    for suffix, effects in table.items():
        if qual_suffix_matches(qualname, suffix):
            return effects
    return frozenset()


def seed_effects(graph: CallGraph, root: Path) -> None:
    """Assign intrinsic effects to every function in ``graph``.

    Re-parses each module once to run the syntactic visitor (the graph
    does not retain ASTs); primitives come from the table.
    """
    by_file: Dict[str, List[FunctionNode]] = {}
    for node in graph.functions.values():
        node.intrinsic.clear()
        node.intrinsic_why.clear()
        prim = _suffix_lookup(PRIMITIVE_EFFECTS, node.qualname)
        for effect in prim:
            node.intrinsic.add(effect)
            node.intrinsic_why.setdefault(
                effect, "primitive effect of this function"
            )
        by_file.setdefault(node.file, []).append(node)
    for file, nodes in by_file.items():
        path = Path(root) / file
        try:
            tree = ast.parse(path.read_text(), filename=file)
        except (OSError, SyntaxError):
            continue
        module_names = set(graph.bindings.get(nodes[0].module, {}))
        by_line = {n.line: n for n in nodes}
        for fn_ast in ast.walk(tree):
            if not isinstance(
                fn_ast, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            node = by_line.get(fn_ast.lineno)
            if node is None or node.name != fn_ast.name:
                continue
            visitor = _IntrinsicVisitor(node, module_names)
            for arg in fn_ast.args.args + fn_ast.args.kwonlyargs:
                visitor.locals.add(arg.arg)
            for stmt in fn_ast.body:
                visitor.visit(stmt)


def propagate(
    graph: CallGraph,
    barriers: Optional[Mapping[str, FrozenSet[str]]] = None,
) -> None:
    """Flow effects to a fixpoint: ``effects(f) = intrinsic(f) ∪
    ⋃ (effects(g) − absorbed(g))`` over every resolved callee ``g``."""
    barrier_table = DEFAULT_BARRIERS if barriers is None else barriers
    absorbed: Dict[str, FrozenSet[str]] = {
        q: _suffix_lookup(barrier_table, q) for q in graph.functions
    }
    callers: Dict[str, Set[str]] = {q: set() for q in graph.functions}
    for node in graph.functions.values():
        node.effects = set(node.intrinsic)
        for callee in node.calls:
            if callee in callers:
                callers[callee].add(node.qualname)
    worklist = [q for q, n in graph.functions.items() if n.effects]
    while worklist:
        qual = worklist.pop()
        node = graph.functions[qual]
        outgoing = node.effects - absorbed[qual]
        for caller_qual in callers[qual]:
            caller = graph.functions[caller_qual]
            if not outgoing <= caller.effects:
                caller.effects |= outgoing
                worklist.append(caller_qual)


def witness_chain(
    graph: CallGraph,
    start: str,
    effect: str,
    barriers: Optional[Mapping[str, FrozenSet[str]]] = None,
) -> List[str]:
    """Shortest call chain from ``start`` to an introduction of
    ``effect`` — the explanation the contract findings carry.

    Intermediate hops must not absorb the effect (an absorbed path
    cannot be how ``start`` acquired it).  Returns ``[start]`` when the
    effect is intrinsic to ``start`` itself, ``[]`` when no chain
    exists (stale effect sets).
    """
    barrier_table = DEFAULT_BARRIERS if barriers is None else barriers
    node = graph.functions.get(start)
    if node is None:
        return []
    if effect in node.intrinsic:
        return [start]
    parents: Dict[str, str] = {}
    queue = [start]
    seen = {start}
    while queue:
        current = queue.pop(0)
        for callee in sorted(graph.callees(current)):
            if callee in seen or callee not in graph.functions:
                continue
            if effect in _suffix_lookup(barrier_table, callee):
                continue
            callee_node = graph.functions[callee]
            if effect not in callee_node.effects:
                continue
            seen.add(callee)
            parents[callee] = current
            if effect in callee_node.intrinsic:
                chain = [callee]
                while chain[-1] != start:
                    chain.append(parents[chain[-1]])
                return list(reversed(chain))
            queue.append(callee)
    return []


def render_chain(graph: CallGraph, chain: List[str], effect: str) -> str:
    """``a -> b -> c (raises SimulatedCrash)`` — for finding messages."""
    if not chain:
        return "(no witness chain; effect set may be conservative)"
    pkg_prefix = graph.package + "."
    short = [
        q[len(pkg_prefix):] if q.startswith(pkg_prefix) else q
        for q in chain
    ]
    last = graph.functions.get(chain[-1])
    why = (
        last.intrinsic_why.get(effect, effect)
        if last is not None
        else effect
    )
    return " -> ".join(short) + f" ({why})"

"""Checked-in suppression baseline for the effect-contract engine.

Each entry names a contract rule, a function qualname *suffix*, and
the reason the violation is sanctioned.  The baseline is part of the
repo: adding to it is a reviewed decision, and :func:`unused_entries`
lets CI fail when an entry no longer matches anything (so suppressions
cannot outlive the code they excused).

Baselines suppress *specific known* violations; new code that trips a
contract shows up immediately because its qualname matches no entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Set, Tuple

from repro.analysis.effects.lattice import qual_suffix_matches


@dataclass(frozen=True)
class BaselineEntry:
    """One sanctioned (rule, function) pair and why it is allowed."""

    rule_id: str
    qualname: str  #: matched as a dotted suffix of the function qualname
    reason: str


#: The baseline.  Keep this SHORT — every entry is a standing exception
#: to a layering contract and needs a defensible reason.
BASELINE: Tuple[BaselineEntry, ...] = (
    BaselineEntry(
        rule_id="effect/analysis-pure",
        qualname="analysis.selfcheck._build_case_db",
        reason=(
            "The plan-lint selfcheck builds a throwaway in-memory "
            "database to lint real plans against; its writes touch "
            "only that fixture, never caller state."
        ),
    ),
    BaselineEntry(
        rule_id="effect/analysis-pure",
        qualname="analysis.drift.measure_drift",
        reason=(
            "Drift measurement executes the selfcheck corpus on "
            "throwaway case databases to compare planner estimates "
            "with measured simulated cost; the writes are the "
            "measured workload."
        ),
    ),
    BaselineEntry(
        rule_id="effect/obs-passive",
        qualname="obs.explain.explain_analyze",
        reason=(
            "EXPLAIN ANALYZE executes the plan it reports on "
            "(Postgres semantics); the write effects are the "
            "measured workload itself, not observer side effects."
        ),
    ),
)


def is_baselined(
    rule_id: str,
    qualname: str,
    baseline: Sequence[BaselineEntry] = BASELINE,
) -> bool:
    return any(
        entry.rule_id == rule_id
        and qual_suffix_matches(qualname, entry.qualname)
        for entry in baseline
    )


def unused_entries(
    matched: Iterable[Tuple[str, str]],
    baseline: Sequence[BaselineEntry] = BASELINE,
) -> List[BaselineEntry]:
    """Baseline entries that suppressed nothing in this run.

    ``matched`` holds the ``(rule_id, qualname)`` pairs of violations
    that were filtered out; an entry matching none of them is stale.
    """
    matched_list = list(matched)
    stale: List[BaselineEntry] = []
    for entry in baseline:
        hit = any(
            entry.rule_id == rule_id
            and qual_suffix_matches(qualname, entry.qualname)
            for rule_id, qualname in matched_list
        )
        if not hit:
            stale.append(entry)
    return stale

"""Whole-program effect inference for the repro engine.

The pipeline (each stage a module):

1. :mod:`~repro.analysis.effects.callgraph` — parse ``src/repro`` and
   build a class-aware call graph, recording ``LaneTask`` dispatch
   sites along the way.
2. :mod:`~repro.analysis.effects.lattice` — seed per-function
   intrinsic effects (primitive table + syntactic patterns) and
   propagate them to a fixpoint through sanctioned barriers.
3. :mod:`~repro.analysis.effects.contracts` — evaluate the layering
   contract table, reporting frontier violations with witness chains.
4. :mod:`~repro.analysis.effects.lanesafety` — verify nothing
   dispatched through the lane scheduler mutates shared state.

:func:`analyze_effects` runs all four and applies the checked-in
suppression :mod:`~repro.analysis.effects.baseline`; it is what the
``repro effects`` CLI and the CI gate call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.analysis.effects.baseline import (
    BASELINE,
    BaselineEntry,
    is_baselined,
    unused_entries,
)
from repro.analysis.effects.callgraph import CallGraph, build_callgraph
from repro.analysis.effects.contracts import (
    EFFECT_RULES,
    check_contracts,
)
from repro.analysis.effects.lanesafety import (
    LANE_RULE,
    OPAQUE_RULE,
    check_lane_safety,
)
from repro.analysis.effects.lattice import (
    EFFECTS,
    propagate,
    seed_effects,
)
from repro.analysis.findings import Finding, Severity

#: Emitted (as an error) when a baseline entry suppresses nothing —
#: suppressions must not outlive the code they excused.
STALE_BASELINE_RULE = "effect/stale-baseline"

__all__ = [
    "BASELINE",
    "BaselineEntry",
    "CallGraph",
    "EFFECTS",
    "EFFECT_RULES",
    "EffectsReport",
    "LANE_RULE",
    "OPAQUE_RULE",
    "STALE_BASELINE_RULE",
    "analyze_effects",
    "build_effect_graph",
]


@dataclass
class EffectsReport:
    """Everything one engine run produced."""

    graph: CallGraph
    #: Actionable findings (contract + lane safety + stale baseline).
    findings: List[Finding] = field(default_factory=list)
    #: Violations the baseline filtered out (kept for JSON output).
    suppressed: List[Finding] = field(default_factory=list)


def build_effect_graph(
    root: Path, package: Optional[str] = None
) -> CallGraph:
    """Call graph with seeded + propagated effect sets (no checks)."""
    graph = build_callgraph(root, package)
    seed_effects(graph, root)
    propagate(graph)
    return graph


def analyze_effects(
    root: Path,
    package: Optional[str] = None,
    baseline: Sequence[BaselineEntry] = BASELINE,
) -> EffectsReport:
    """Run the full pipeline over the package at ``root``."""
    graph = build_effect_graph(root, package)
    report = EffectsReport(graph=graph)
    matched: List[Tuple[str, str]] = []
    for violation in check_contracts(graph):
        finding = violation.to_finding(graph)
        pair = (violation.entry.rule_id, violation.function.qualname)
        if is_baselined(*pair, baseline=baseline):
            matched.append(pair)
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)
    for finding in check_lane_safety(graph):
        pair = (finding.rule_id, str(finding.node))
        if is_baselined(*pair, baseline=baseline):
            matched.append(pair)
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)
    for entry in unused_entries(matched, baseline):
        report.findings.append(
            Finding(
                rule_id=STALE_BASELINE_RULE,
                severity=Severity.ERROR,
                node=entry.qualname,
                message=(
                    f"baseline entry for {entry.rule_id!r} matched no "
                    "violation; remove it"
                ),
            )
        )
    return report

"""The layering contract: which package may reach which effect.

Each :class:`ContractEntry` names a package scope (module-path prefix
under the root package), the effects functions in that scope must not
*reach* (transitively, through any number of helpers), and exemption
prefixes for the modules that legitimately implement the mechanism.
The table re-expresses the four direct-call confinement lint rules of
:mod:`repro.analysis.code_lint` as reachability properties — so a
one-line wrapper in an allowed package no longer launders the call —
and adds contracts the line lint cannot express at all (read-only
analysis/obs, pure planner estimators).

Reporting is **frontier-based**: a violation is charged to the
function where the forbidden effect *enters* the contract scope — the
in-scope function none of whose in-scope callees already carry the
effect.  Without this, one leaked effect would flag its entire caller
tree.  Every finding carries the shortest witness call chain from the
frontier function to the effect's introduction site.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.effects.callgraph import CallGraph, FunctionNode
from repro.analysis.effects.lattice import render_chain, witness_chain
from repro.analysis.findings import Finding, Severity


@dataclass(frozen=True)
class ContractEntry:
    """One row of the layering contract table."""

    rule_id: str
    #: Module-path prefix (relative to the root package) the entry
    #: governs; ``""`` means the whole package.
    scope: str
    #: Effects no function in scope may reach.
    forbid: FrozenSet[str]
    #: Module-path prefixes excused from the entry (the implementing
    #: layer itself, sanctioned delivery surfaces).
    exempt: Tuple[str, ...] = ()
    description: str = ""
    severity: Severity = Severity.ERROR


#: The contract table.  Scopes/exemptions are module paths relative to
#: the root package (``repro``), matched as dotted prefixes.
EFFECT_RULES: Dict[str, ContractEntry] = {
    entry.rule_id: entry
    for entry in (
        ContractEntry(
            rule_id="effect/analysis-pure",
            scope="analysis",
            forbid=frozenset(
                {"disk.write", "wal.append", "catalog.mutate"}
            ),
            description=(
                "The analysis layer is a read-only observer: nothing "
                "importable from repro.analysis may reach a page "
                "write, a WAL append, or a catalog mutation."
            ),
        ),
        ContractEntry(
            rule_id="effect/obs-passive",
            scope="obs",
            forbid=frozenset(
                {"disk.write", "wal.append", "catalog.mutate"}
            ),
            description=(
                "Observability is passive: tracing/metrics/explain "
                "code must not reach writes to data structures it "
                "reports on."
            ),
        ),
        ContractEntry(
            rule_id="effect/planner-estimates-pure",
            scope="core.planner",
            forbid=frozenset(
                {
                    "clock.advance",
                    "clock.rewind",
                    "disk.read",
                    "disk.write",
                    "wal.append",
                }
            ),
            description=(
                "Planner cost estimation is arithmetic over statistics "
                "already collected: estimators must not reach the "
                "simulated clock or any I/O (estimates would then "
                "depend on — and disturb — execution state)."
            ),
        ),
        ContractEntry(
            rule_id="effect/shard-routing-pure",
            scope="shard",
            forbid=frozenset(
                {
                    "clock.advance",
                    "clock.rewind",
                    "disk.read",
                    "disk.write",
                    "wal.append",
                }
            ),
            exempt=("shard.executor", "shard.faults"),
            description=(
                "Shard routing and hot-range planning are arithmetic "
                "over the shard map and access counters: splitting a "
                "delete list must not reach the simulated clock or any "
                "I/O.  Only the executor (which runs the fragments) "
                "and the crash sweep (which drives recoverable "
                "statements) touch the machine."
            ),
        ),
        ContractEntry(
            rule_id="effect/crash-confinement",
            scope="",
            forbid=frozenset({"crash.raise"}),
            exempt=("faults", "storage.disk", "recovery.wal"),
            description=(
                "Reachability form of code/crash-outside-faults: only "
                "the injector layer and the sanctioned delivery points "
                "(page I/O, WAL append) may reach a SimulatedCrash "
                "raise.  A helper wrapper around the raise no longer "
                "hides it."
            ),
        ),
        ContractEntry(
            rule_id="effect/clock-rewind-confinement",
            scope="",
            forbid=frozenset({"clock.rewind"}),
            exempt=("parallel", "storage.disk"),
            description=(
                "Reachability form of code/clock-rewind: only the lane "
                "scheduler (and SimClock itself) may reposition the "
                "simulated clock backwards."
            ),
        ),
        ContractEntry(
            rule_id="effect/media-error-confinement",
            scope="",
            forbid=frozenset({"media_error.raise"}),
            exempt=("media", "storage"),
            description=(
                "Reachability form of code/media-error-outside-media: "
                "media faults originate at the device and terminate in "
                "the retry/repair layer; nothing above the buffer pool "
                "may reach an unabsorbed raise of the media family."
            ),
        ),
        ContractEntry(
            rule_id="effect/lsm-compaction-confined",
            scope="",
            forbid=frozenset({"lsm.compact"}),
            exempt=("lsm",),
            description=(
                "Compaction scheduling is confined to repro/lsm/: the "
                "rest of the engine triggers it only through the "
                "tree's public write and maintenance surface (put/"
                "delete/delete_range, flush_memtable, compact_all, "
                "delete_aware_compactions, lsm_bulk_delete), which "
                "absorb the effect.  Reaching compact_once any other "
                "way would let operators hand-pick runs and bypass "
                "the FADE policy and its accounting."
            ),
        ),
        ContractEntry(
            rule_id="effect/no-global-rng",
            scope="",
            forbid=frozenset({"rng"}),
            description=(
                "Reachability form of code/global-random: all "
                "randomness flows through seeded random.Random "
                "instances; module-global random.* calls anywhere "
                "break run-to-run determinism."
            ),
        ),
        ContractEntry(
            rule_id="effect/wall-clock-confinement",
            scope="",
            forbid=frozenset({"wall_clock"}),
            exempt=("bench",),
            description=(
                "Reachability form of code/wall-clock: simulated "
                "results must not depend on host time; only the "
                "benchmark harness may read it (to report host-side "
                "runtimes)."
            ),
        ),
        ContractEntry(
            rule_id="effect/metrics-confinement",
            scope="",
            forbid=frozenset({"metrics.mutate"}),
            exempt=("storage", "obs"),
            description=(
                "Reachability form of code/adhoc-metrics: counters are "
                "mutated by their owning layer (storage) or the "
                "metrics registry (obs), never ad hoc from engine "
                "code."
            ),
        ),
    )
}


def _module_path(graph: CallGraph, node: FunctionNode) -> str:
    """Module path relative to the root package (``core.executor``)."""
    prefix = graph.package + "."
    if node.module == graph.package:
        return ""
    if node.module.startswith(prefix):
        return node.module[len(prefix):]
    return node.module


def _prefix_match(path: str, prefix: str) -> bool:
    if prefix == "":
        return True
    return path == prefix or path.startswith(prefix + ".")


def entry_applies(
    graph: CallGraph, entry: ContractEntry, node: FunctionNode
) -> bool:
    """``node`` is in the entry's scope and not exempted."""
    path = _module_path(graph, node)
    if not _prefix_match(path, entry.scope):
        return False
    return not any(_prefix_match(path, ex) for ex in entry.exempt)


def _has_in_scope_carrier(
    graph: CallGraph,
    entry: ContractEntry,
    node: FunctionNode,
    effect: str,
) -> bool:
    """Some in-scope, non-exempt callee of ``node`` already carries the
    effect — so ``node`` is not the frontier and is not reported."""
    for callee_qual in graph.callees(node.qualname):
        callee = graph.functions.get(callee_qual)
        if callee is None or callee_qual == node.qualname:
            continue
        if effect in callee.effects and entry_applies(
            graph, entry, callee
        ):
            return True  # an in-scope callee is closer to the source
    return False


@dataclass
class ContractViolation:
    """One (function, entry, effect) contract breach with its chain."""

    entry: ContractEntry
    function: FunctionNode
    effect: str
    chain: List[str] = field(default_factory=list)

    def to_finding(self, graph: CallGraph) -> Finding:
        rendered = render_chain(graph, self.chain, self.effect)
        return Finding(
            rule_id=self.entry.rule_id,
            severity=self.entry.severity,
            node=self.function.qualname,
            message=(
                f"reaches forbidden effect {self.effect!r}: {rendered}"
            ),
            file=self.function.file,
            line=self.function.line,
        )


def check_contracts(graph: CallGraph) -> List[ContractViolation]:
    """Evaluate every table entry against propagated effect sets.

    Call after :func:`repro.analysis.effects.lattice.propagate`.
    Results are sorted by (rule, file, line) for stable output.
    """
    violations: List[ContractViolation] = []
    for entry in EFFECT_RULES.values():
        for node in graph.functions.values():
            if not entry_applies(graph, entry, node):
                continue
            for effect in sorted(entry.forbid & node.effects):
                if _has_in_scope_carrier(graph, entry, node, effect):
                    continue
                chain = witness_chain(graph, node.qualname, effect)
                violations.append(
                    ContractViolation(
                        entry=entry,
                        function=node,
                        effect=effect,
                        chain=chain,
                    )
                )
    violations.sort(
        key=lambda v: (
            v.entry.rule_id,
            v.function.file,
            v.function.line,
            v.effect,
        )
    )
    return violations

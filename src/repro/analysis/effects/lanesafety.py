"""Static lane-safety: code dispatched to lanes must not share state.

:class:`~repro.parallel.lanes.LaneScheduler` runs tasks at shifted
simulated offsets and rolls their I/O up per lane; the whole accounting
story (and the paper's §2.4 concurrency claims) assumes each task
touches only its own structure.  The plan lint checks that claim at the
*plan* level (distinct ``target`` names); this pass checks it at the
*code* level: starting from every ``LaneTask(...)`` construction site
recorded in the call graph, walk everything reachable and flag
functions whose own body

* mutates a module-level name (``global.mutate``) — host-order
  execution would make the result depend on lane interleaving,
* mutates the catalog (``catalog.mutate``) — structure metadata is
  shared across lanes,
* repositions the clock backwards (``clock.rewind``) — only the
  scheduler's ``run_region`` barrier logic may do that, or
* mutates foreign counters (``metrics.mutate``) outside the storage /
  obs layers — the per-lane ``DiskStats`` rollup is the sanctioned
  sink, ad hoc sinks double-count across lanes.

Checks use *intrinsic* effects at each reached function (not the
propagated sets) so the finding lands on the mutating function, with
the dispatch-to-mutation call chain as the message.  Factory dispatch
sites (``run=make_task(...)``) analyze the factory's closures; opaque
``run=`` values get a warning so dynamic dispatch cannot silently
escape the pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.effects.callgraph import (
    CallGraph,
    FunctionNode,
    LaneDispatch,
)
from repro.analysis.findings import Finding, Severity

LANE_RULE = "effect/lane-shared-state"
OPAQUE_RULE = "effect/lane-opaque-entry"

#: Effects that are lane-unsafe wherever they occur.
_ALWAYS_UNSAFE: FrozenSet[str] = frozenset(
    {"global.mutate", "catalog.mutate", "clock.rewind"}
)
#: Module-path prefixes (relative to the root package) whose counter
#: mutations are the sanctioned per-lane accounting surface.
_METRICS_OK_PREFIXES: Tuple[str, ...] = ("storage", "obs")


def _rel_module(graph: CallGraph, node: FunctionNode) -> str:
    prefix = graph.package + "."
    if node.module.startswith(prefix):
        return node.module[len(prefix):]
    return "" if node.module == graph.package else node.module


def _metrics_sanctioned(graph: CallGraph, node: FunctionNode) -> bool:
    rel = _rel_module(graph, node)
    return any(
        rel == p or rel.startswith(p + ".") for p in _METRICS_OK_PREFIXES
    )


def lane_entries(
    graph: CallGraph, dispatch: LaneDispatch
) -> List[str]:
    """Functions that run *inside* the lane for one dispatch site."""
    if dispatch.entry is None:
        return []
    if dispatch.kind == "factory":
        # The factory runs at construction time (outside the lane);
        # what the lane executes is its returned closures.
        nested = graph.nested_functions(dispatch.entry)
        return nested if nested else [dispatch.entry]
    if dispatch.kind == "function":
        return [dispatch.entry]
    return []


@dataclass
class LaneHazard:
    """One shared-state mutation reachable from a lane entry."""

    dispatch: LaneDispatch
    entry: str
    function: FunctionNode
    effect: str
    chain: List[str]

    def to_finding(self, graph: CallGraph) -> Finding:
        pkg = graph.package + "."
        short = [
            q[len(pkg):] if q.startswith(pkg) else q for q in self.chain
        ]
        why = self.function.intrinsic_why.get(self.effect, self.effect)
        return Finding(
            rule_id=LANE_RULE,
            severity=Severity.ERROR,
            node=self.function.qualname,
            message=(
                f"lane task dispatched at {self.dispatch.file}:"
                f"{self.dispatch.line} reaches shared-state mutation "
                f"{self.effect!r}: " + " -> ".join(short) + f" ({why})"
            ),
            file=self.function.file,
            line=self.function.line,
        )


def check_lane_safety(graph: CallGraph) -> List[Finding]:
    """Run the pass over every recorded dispatch site.

    Requires seeded intrinsics (:func:`~repro.analysis.effects.
    lattice.seed_effects`); does not need the propagated fixpoint.
    """
    findings: List[Finding] = []
    hazards: List[LaneHazard] = []
    seen_hazards: Set[Tuple[str, str, str]] = set()
    for dispatch in graph.lane_dispatches:
        entries = lane_entries(graph, dispatch)
        if not entries:
            findings.append(
                Finding(
                    rule_id=OPAQUE_RULE,
                    severity=Severity.WARNING,
                    node=dispatch.owner,
                    message=(
                        "LaneTask run= callable could not be resolved "
                        "statically; lane-safety cannot vouch for it"
                    ),
                    file=dispatch.file,
                    line=dispatch.line,
                )
            )
            continue
        for entry in entries:
            for hazard in _walk_entry(graph, dispatch, entry):
                key = (entry, hazard.function.qualname, hazard.effect)
                if key in seen_hazards:
                    continue
                seen_hazards.add(key)
                hazards.append(hazard)
    hazards.sort(
        key=lambda h: (h.function.file, h.function.line, h.effect)
    )
    findings.extend(h.to_finding(graph) for h in hazards)
    return findings


def _walk_entry(
    graph: CallGraph, dispatch: LaneDispatch, entry: str
) -> List[LaneHazard]:
    hazards: List[LaneHazard] = []
    parents: Dict[str, Optional[str]] = {entry: None}
    queue = [entry]
    while queue:
        current = queue.pop(0)
        node = graph.functions.get(current)
        if node is None:
            continue
        for effect in sorted(_unsafe_intrinsics(graph, node)):
            chain: List[str] = [current]
            while parents[chain[-1]] is not None:
                parent = parents[chain[-1]]
                assert parent is not None
                chain.append(parent)
            hazards.append(
                LaneHazard(
                    dispatch=dispatch,
                    entry=entry,
                    function=node,
                    effect=effect,
                    chain=list(reversed(chain)),
                )
            )
        for callee in sorted(node.calls):
            if callee not in parents and callee in graph.functions:
                parents[callee] = current
                queue.append(callee)
    return hazards


def _unsafe_intrinsics(
    graph: CallGraph, node: FunctionNode
) -> Set[str]:
    unsafe = set(node.intrinsic & _ALWAYS_UNSAFE)
    if "metrics.mutate" in node.intrinsic and not _metrics_sanctioned(
        graph, node
    ):
        unsafe.add("metrics.mutate")
    return unsafe

"""A small SQL front-end: DDL, INSERT, SELECT, and bulk DELETE."""

from repro.sql.interpreter import SqlSession, StatementResult
from repro.sql.parser import parse, parse_script

__all__ = ["SqlSession", "StatementResult", "parse", "parse_script"]

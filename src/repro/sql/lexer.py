"""Tokenizer for the small SQL dialect of the examples.

Supports exactly the statement shapes the paper uses: DDL for tables
and indexes, INSERT, simple SELECT, and the bulk DELETE with an ``IN``
subquery — ``DELETE FROM R WHERE R.A IN (SELECT D.A FROM D)``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import SqlSyntaxError

KEYWORDS = {
    "CREATE", "TABLE", "UNIQUE", "CLUSTERED", "INDEX", "ON", "DROP",
    "INSERT", "INTO", "VALUES", "SELECT", "FROM", "WHERE", "DELETE",
    "IN", "INT", "CHAR", "AND", "EXPLAIN", "ANALYZE", "NOT", "ORDER",
    "BY", "UPDATE", "SET", "COUNT",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><=|>=|<>|!=|=|<|>|\(|\)|,|\.|\*|;|\+|-)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str  # 'keyword' | 'name' | 'number' | 'string' | 'op' | 'eof'
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.value == word


def tokenize(sql: str) -> List[Token]:
    """Split ``sql`` into tokens; raises on unrecognized input."""
    tokens: List[Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            raise SqlSyntaxError(
                f"unexpected character {sql[pos]!r} at offset {pos}"
            )
        kind = match.lastgroup
        text = match.group()
        if kind == "ws":
            pos = match.end()
            continue
        if kind == "name" and text.upper() in KEYWORDS:
            tokens.append(Token("keyword", text.upper(), pos))
        elif kind == "name":
            tokens.append(Token("name", text, pos))
        elif kind == "number":
            tokens.append(Token("number", text, pos))
        elif kind == "string":
            tokens.append(Token("string", text[1:-1].replace("''", "'"), pos))
        else:
            tokens.append(Token("op", text, pos))
        pos = match.end()
    tokens.append(Token("eof", "", len(sql)))
    return tokens


class TokenStream:
    """Cursor over a token list with expect/accept helpers."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self._index += 1
        return token

    def accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise SqlSyntaxError(
                f"expected {word} at offset {self.current.position}, "
                f"found {self.current.value!r}"
            )

    def accept_op(self, op: str) -> bool:
        if self.current.kind == "op" and self.current.value == op:
            self.advance()
            return True
        return False

    def expect_op(self, op: str) -> None:
        if not self.accept_op(op):
            raise SqlSyntaxError(
                f"expected {op!r} at offset {self.current.position}, "
                f"found {self.current.value!r}"
            )

    def expect_name(self) -> str:
        if self.current.kind != "name":
            raise SqlSyntaxError(
                f"expected a name at offset {self.current.position}, "
                f"found {self.current.value!r}"
            )
        return self.advance().value

    def expect_number(self) -> int:
        if self.current.kind != "number":
            raise SqlSyntaxError(
                f"expected a number at offset {self.current.position}, "
                f"found {self.current.value!r}"
            )
        return int(self.advance().value)

    def at_eof(self) -> bool:
        return self.current.kind == "eof"

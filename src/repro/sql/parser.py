"""Recursive-descent parser for the SQL dialect."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import SqlSyntaxError
from repro.sql import ast
from repro.sql.lexer import Token, TokenStream, tokenize


def parse(sql: str) -> ast.Statement:
    """Parse exactly one statement (a trailing ``;`` is allowed)."""
    statements = parse_script(sql)
    if len(statements) != 1:
        raise SqlSyntaxError(
            f"expected exactly one statement, got {len(statements)}"
        )
    return statements[0]


def parse_script(sql: str) -> List[ast.Statement]:
    """Parse a ``;``-separated sequence of statements."""
    stream = TokenStream(tokenize(sql))
    statements: List[ast.Statement] = []
    while not stream.at_eof():
        statements.append(_statement(stream))
        while stream.accept_op(";"):
            pass
    return statements


def _statement(s: TokenStream) -> ast.Statement:
    if s.accept_keyword("EXPLAIN"):
        analyze = bool(s.accept_keyword("ANALYZE"))
        return ast.Explain(_statement(s), analyze=analyze)
    if s.accept_keyword("CREATE"):
        return _create(s)
    if s.accept_keyword("DROP"):
        return _drop(s)
    if s.accept_keyword("INSERT"):
        return _insert(s)
    if s.accept_keyword("SELECT"):
        return _select(s)
    if s.accept_keyword("UPDATE"):
        return _update(s)
    if s.accept_keyword("DELETE"):
        return _delete(s)
    raise SqlSyntaxError(
        f"unexpected token {s.current.value!r} at offset {s.current.position}"
    )


def _create(s: TokenStream) -> ast.Statement:
    unique = s.accept_keyword("UNIQUE")
    clustered = s.accept_keyword("CLUSTERED")
    if s.accept_keyword("TABLE"):
        if unique or clustered:
            raise SqlSyntaxError("UNIQUE/CLUSTERED apply to indexes only")
        table = s.expect_name()
        s.expect_op("(")
        columns: List[ast.ColumnDef] = []
        while True:
            name = s.expect_name()
            if s.accept_keyword("INT"):
                columns.append(ast.ColumnDef(name, "INT"))
            elif s.accept_keyword("CHAR"):
                s.expect_op("(")
                length = s.expect_number()
                s.expect_op(")")
                columns.append(ast.ColumnDef(name, "CHAR", length))
            else:
                raise SqlSyntaxError(
                    f"unknown type at offset {s.current.position}"
                )
            if not s.accept_op(","):
                break
        s.expect_op(")")
        return ast.CreateTable(table, tuple(columns))
    s.expect_keyword("INDEX")
    index = s.expect_name()
    s.expect_keyword("ON")
    table = s.expect_name()
    s.expect_op("(")
    column = s.expect_name()
    s.expect_op(")")
    return ast.CreateIndex(index, table, column, unique, clustered)


def _drop(s: TokenStream) -> ast.Statement:
    if s.accept_keyword("TABLE"):
        return ast.DropTable(s.expect_name())
    s.expect_keyword("INDEX")
    index = s.expect_name()
    s.expect_keyword("ON")
    table = s.expect_name()
    return ast.DropIndex(index, table)


def _insert(s: TokenStream) -> ast.Statement:
    s.expect_keyword("INTO")
    table = s.expect_name()
    s.expect_keyword("VALUES")
    rows: List[Tuple[ast.Literal, ...]] = []
    while True:
        s.expect_op("(")
        values: List[ast.Literal] = []
        while True:
            values.append(_literal(s))
            if not s.accept_op(","):
                break
        s.expect_op(")")
        rows.append(tuple(values))
        if not s.accept_op(","):
            break
    return ast.Insert(table, tuple(rows))


def _select(s: TokenStream) -> ast.Select:
    columns: List[str] = []
    count_star = False
    if s.accept_keyword("COUNT"):
        s.expect_op("(")
        s.expect_op("*")
        s.expect_op(")")
        count_star = True
    elif not s.accept_op("*"):
        while True:
            columns.append(_column_ref(s))
            if not s.accept_op(","):
                break
    s.expect_keyword("FROM")
    table = s.expect_name()
    where = _where(s) if s.accept_keyword("WHERE") else None
    order_by: Optional[str] = None
    if s.accept_keyword("ORDER"):
        s.expect_keyword("BY")
        order_by = _column_ref(s)
    return ast.Select(table, tuple(columns), where, order_by, count_star)


def _update(s: TokenStream) -> ast.Update:
    table = s.expect_name()
    s.expect_keyword("SET")
    column = _column_ref(s)
    s.expect_op("=")
    # Either "col = <literal>" or "col = col (+|-) <literal>".
    if s.current.kind == "name":
        ref = _column_ref(s)
        if ref != column:
            raise SqlSyntaxError(
                "SET expressions may only reference the SET column itself"
            )
        if s.accept_op("+"):
            sign = 1
        elif s.accept_op("-"):
            sign = -1
        else:
            raise SqlSyntaxError("expected + or - in SET expression")
        literal = _literal(s)
        if not isinstance(literal, int):
            raise SqlSyntaxError("SET delta must be an integer")
        clause = ast.SetClause(column, delta=sign * literal)
    else:
        literal = _literal(s)
        if not isinstance(literal, int):
            raise SqlSyntaxError("SET value must be an integer")
        clause = ast.SetClause(column, value=literal)
    where = _where(s) if s.accept_keyword("WHERE") else None
    return ast.Update(table, clause, where)


def _delete(s: TokenStream) -> ast.Delete:
    s.expect_keyword("FROM")
    table = s.expect_name()
    where = _where(s) if s.accept_keyword("WHERE") else None
    return ast.Delete(table, where)


def _where(s: TokenStream) -> ast.Predicate:
    """One or more simple predicates joined by AND."""
    predicate = _simple_predicate(s)
    while s.accept_keyword("AND"):
        predicate = ast.And(predicate, _simple_predicate(s))
    return predicate


def _simple_predicate(s: TokenStream) -> ast.Predicate:
    column = _column_ref(s)
    if s.accept_keyword("IN"):
        s.expect_op("(")
        if s.accept_keyword("SELECT"):
            sub_column = _column_ref(s)
            s.expect_keyword("FROM")
            sub_table = s.expect_name()
            s.expect_op(")")
            return ast.InSubquery(column, sub_table, sub_column)
        values: List[ast.Literal] = []
        while True:
            values.append(_literal(s))
            if not s.accept_op(","):
                break
        s.expect_op(")")
        return ast.InList(column, tuple(values))
    for op in ("<=", ">=", "<>", "!=", "=", "<", ">"):
        if s.accept_op(op):
            return ast.Comparison(column, "<>" if op == "!=" else op,
                                  _literal(s))
    raise SqlSyntaxError(
        f"expected a comparison or IN at offset {s.current.position}"
    )


def _column_ref(s: TokenStream) -> str:
    """``name`` or ``table.name`` — the qualifier is dropped."""
    name = s.expect_name()
    if s.accept_op("."):
        return s.expect_name()
    return name


def _literal(s: TokenStream) -> ast.Literal:
    if s.accept_op("-"):
        return -s.expect_number()
    token = s.current
    if token.kind == "number":
        s.advance()
        return int(token.value)
    if token.kind == "string":
        s.advance()
        return token.value
    raise SqlSyntaxError(
        f"expected a literal at offset {token.position}, "
        f"found {token.value!r}"
    )

"""AST node types for the SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

Literal = Union[int, str]


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str  # 'INT' or 'CHAR'
    length: int = 0


@dataclass(frozen=True)
class CreateTable:
    table: str
    columns: Tuple[ColumnDef, ...]


@dataclass(frozen=True)
class CreateIndex:
    index: str
    table: str
    column: str
    unique: bool = False
    clustered: bool = False


@dataclass(frozen=True)
class DropTable:
    table: str


@dataclass(frozen=True)
class DropIndex:
    index: str
    table: str


@dataclass(frozen=True)
class Insert:
    table: str
    rows: Tuple[Tuple[Literal, ...], ...]


@dataclass(frozen=True)
class Comparison:
    """``column <op> literal`` with op in =, <, >, <=, >=, <>."""

    column: str
    op: str
    value: Literal


@dataclass(frozen=True)
class InList:
    """``column IN (v1, v2, ...)``."""

    column: str
    values: Tuple[Literal, ...]


@dataclass(frozen=True)
class InSubquery:
    """``column IN (SELECT sub_column FROM sub_table)``."""

    column: str
    sub_table: str
    sub_column: str


@dataclass(frozen=True)
class And:
    """Conjunction of two predicates."""

    left: "Predicate"
    right: "Predicate"


Predicate = Union[Comparison, InList, InSubquery, "And"]


@dataclass(frozen=True)
class Select:
    table: str
    columns: Tuple[str, ...]  # empty tuple means '*'
    where: Optional[Predicate] = None
    order_by: Optional[str] = None
    count_star: bool = False  # SELECT COUNT(*)


@dataclass(frozen=True)
class SetClause:
    """``SET column = literal`` or ``SET column = column + literal``."""

    column: str
    delta: Optional[int] = None  # None: absolute assignment
    value: Optional[int] = None


@dataclass(frozen=True)
class Update:
    table: str
    set_clause: SetClause
    where: Optional[Predicate] = None


@dataclass(frozen=True)
class Delete:
    table: str
    where: Optional[Predicate] = None


@dataclass(frozen=True)
class Explain:
    statement: "Statement"
    #: ``EXPLAIN ANALYZE``: execute the statement and annotate the plan
    #: with measured per-operator costs (the delete really happens).
    analyze: bool = False


Statement = Union[
    CreateTable,
    CreateIndex,
    DropTable,
    DropIndex,
    Insert,
    Select,
    Update,
    Delete,
    Explain,
]

"""Statement execution: binds ASTs against the catalog and runs them.

DELETE statements with an ``IN`` predicate on an indexed (or any)
column are routed through the bulk-delete planner — typing the paper's

    DELETE FROM R WHERE R.A IN (SELECT D.A FROM D)

into :meth:`SqlSession.execute` runs the vertical plan.  ``EXPLAIN``
prefixes return the chosen plan as text without executing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.catalog.database import Database
from repro.catalog.schema import Attribute, TableSchema
from repro.core.bulk_update import bulk_update
from repro.core.executor import BulkDeleteOptions, BulkDeleteResult, bulk_delete
from repro.core.planner import choose_plan
from repro.errors import SqlBindError
from repro.sql import ast
from repro.sql.parser import parse, parse_script
from repro.storage.rid import RID


@dataclass
class StatementResult:
    """Uniform result of one statement."""

    kind: str  # 'ddl' | 'insert' | 'select' | 'delete' | 'explain'
    rows: List[Tuple[object, ...]] = field(default_factory=list)
    affected: int = 0
    text: str = ""
    detail: Optional[BulkDeleteResult] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.kind == "select":
            return f"<select: {len(self.rows)} rows>"
        if self.kind == "explain":
            return self.text
        return f"<{self.kind}: {self.affected} affected>"


class SqlSession:
    """Executes SQL text against one :class:`Database`."""

    def __init__(
        self,
        db: Database,
        bulk_delete_options: Optional[BulkDeleteOptions] = None,
        force_vertical: bool = False,
    ) -> None:
        self.db = db
        self.bulk_delete_options = bulk_delete_options
        self.force_vertical = force_vertical

    # ------------------------------------------------------------------
    def execute(self, sql: str) -> StatementResult:
        """Parse and run one statement."""
        return self._run(parse(sql))

    def execute_script(self, sql: str) -> List[StatementResult]:
        """Run a ``;``-separated script; returns one result each."""
        return [self._run(stmt) for stmt in parse_script(sql)]

    # ------------------------------------------------------------------
    def _run(self, stmt: ast.Statement) -> StatementResult:
        if isinstance(stmt, ast.Explain):
            return self._explain(stmt.statement, analyze=stmt.analyze)
        if isinstance(stmt, ast.CreateTable):
            return self._create_table(stmt)
        if isinstance(stmt, ast.CreateIndex):
            self.db.create_index(
                stmt.table,
                stmt.column,
                name=stmt.index,
                unique=stmt.unique,
                clustered=stmt.clustered,
            )
            return StatementResult("ddl", text=f"index {stmt.index} created")
        if isinstance(stmt, ast.DropTable):
            self.db.drop_table(stmt.table)
            return StatementResult("ddl", text=f"table {stmt.table} dropped")
        if isinstance(stmt, ast.DropIndex):
            self.db.drop_index(stmt.table, stmt.index)
            return StatementResult("ddl", text=f"index {stmt.index} dropped")
        if isinstance(stmt, ast.Insert):
            for row in stmt.rows:
                self.db.insert(stmt.table, list(row))
            return StatementResult("insert", affected=len(stmt.rows))
        if isinstance(stmt, ast.Select):
            return self._select(stmt)
        if isinstance(stmt, ast.Update):
            return self._update(stmt)
        if isinstance(stmt, ast.Delete):
            return self._delete(stmt)
        raise SqlBindError(f"unsupported statement {type(stmt).__name__}")

    # ------------------------------------------------------------------
    def _create_table(self, stmt: ast.CreateTable) -> StatementResult:
        attrs = []
        for col in stmt.columns:
            if col.type_name == "INT":
                attrs.append(Attribute.int_(col.name))
            else:
                attrs.append(Attribute.char(col.name, col.length))
        self.db.create_table(TableSchema.of(stmt.table, attrs))
        return StatementResult("ddl", text=f"table {stmt.table} created")

    def _select(self, stmt: ast.Select) -> StatementResult:
        table = self.db.table(stmt.table)
        schema = table.schema
        for column in stmt.columns:
            schema.column_index(column)  # raises CatalogError if unknown
        predicate = self._compile_predicate(stmt.table, stmt.where)
        rows = self._select_source(table, stmt.where)
        out: List[Tuple[object, ...]] = []
        for _, values in rows:
            if predicate is not None and not predicate(values):
                continue
            if stmt.columns:
                out.append(
                    tuple(values[schema.column_index(c)] for c in stmt.columns)
                )
            else:
                out.append(values)
        if stmt.count_star:
            return StatementResult("select", rows=[(len(out),)])
        if stmt.order_by is not None:
            if stmt.columns:
                if stmt.order_by not in stmt.columns:
                    raise SqlBindError(
                        "ORDER BY column must appear in the select list"
                    )
                key_idx = stmt.columns.index(stmt.order_by)
            else:
                key_idx = schema.column_index(stmt.order_by)
            out.sort(key=lambda row: row[key_idx])
        return StatementResult("select", rows=out)

    def _select_source(self, table, where):
        """Choose the access path: an index when the predicate allows.

        The residual predicate is still applied afterwards, so an index
        path only needs to be a superset of the matches.
        """
        from repro.query.operators import (
            choose_access_path,
            execute_access_path,
        )

        column = op = value = None
        candidate = where
        if isinstance(candidate, ast.And):
            # Use the first indexable conjunct as the access path; the
            # full predicate still filters afterwards.
            for part in (candidate.left, candidate.right):
                if isinstance(part, ast.Comparison):
                    candidate = part
                    break
        if isinstance(candidate, ast.Comparison) and isinstance(
            candidate.value, int
        ):
            column, op, value = candidate.column, candidate.op, candidate.value
        path = choose_access_path(table, column, op, value)
        return execute_access_path(table, path)

    def _delete(self, stmt: ast.Delete) -> StatementResult:
        keys = self._delete_keys(stmt)
        if keys is None:
            # Unconditional or non-IN delete: predicate scan then RID ops.
            predicate = self._compile_predicate(stmt.table, stmt.where)
            victims = [
                rid
                for rid, values in self.db.scan(stmt.table)
                if predicate is None or predicate(values)
            ]
            for rid in victims:
                self.db.delete_record(stmt.table, rid)
            return StatementResult("delete", affected=len(victims))
        column, key_values = keys
        result = bulk_delete(
            self.db,
            stmt.table,
            column,
            key_values,
            options=self.bulk_delete_options,
            force_vertical=self.force_vertical,
        )
        return StatementResult(
            "delete", affected=result.records_deleted, detail=result
        )

    def _update(self, stmt: ast.Update) -> StatementResult:
        """Route UPDATE through the vertical bulk-update executor."""
        clause = stmt.set_clause
        table = self.db.table(stmt.table)
        set_idx = table.schema.column_index(clause.column)
        if clause.delta is not None:
            compute = lambda row, d=clause.delta: row[set_idx] + d  # noqa: E731
        else:
            compute = lambda row, v=clause.value: v  # noqa: E731
        predicate = self._compile_predicate(stmt.table, stmt.where)
        result = bulk_update(
            self.db,
            stmt.table,
            clause.column,
            compute=compute,
            where=(predicate if predicate is not None else lambda row: True),
        )
        return StatementResult("update", affected=result.records_updated)

    def _explain(
        self, stmt: ast.Statement, analyze: bool = False
    ) -> StatementResult:
        if not isinstance(stmt, ast.Delete):
            raise SqlBindError("EXPLAIN supports DELETE statements only")
        keys = self._delete_keys(stmt)
        if keys is None:
            if analyze:
                raise SqlBindError(
                    "EXPLAIN ANALYZE needs a bulk-eligible DELETE "
                    "(an IN predicate over integer keys)"
                )
            return StatementResult(
                "explain", text="predicate scan + record-at-a-time delete"
            )
        column, key_values = keys
        if analyze:
            from repro.obs.explain import explain_analyze

            text = explain_analyze(
                self.db,
                stmt.table,
                column,
                key_values,
                options=self.bulk_delete_options,
                force_vertical=self.force_vertical,
            )
            # The statement really executed; the deleted count is in
            # the rendered text.
            return StatementResult("explain", text=text)
        plan = choose_plan(
            self.db,
            stmt.table,
            column,
            len(key_values),
            force_vertical=self.force_vertical,
        )
        from repro.analysis.plan_lint import lint_plan
        from repro.core.operator import render_plan_dag
        from repro.core.plans import BdMethod

        text = plan.explain()
        if plan.table_step().method is not BdMethod.NESTED_LOOPS:
            text += "\n" + render_plan_dag(plan)
        findings = lint_plan(plan, self.db)
        if findings:
            text += "\nplan lint:"
            for finding in findings:
                text += f"\n  {finding.render()}"
        else:
            text += "\nplan lint: clean"
        return StatementResult("explain", text=text)

    # ------------------------------------------------------------------
    def _delete_keys(
        self, stmt: ast.Delete
    ) -> Optional[Tuple[str, List[int]]]:
        """Extract ``(column, keys)`` for bulk-eligible DELETEs."""
        where = stmt.where
        if isinstance(where, ast.InList):
            values = [v for v in where.values]
            if all(isinstance(v, int) for v in values):
                return where.column, values  # type: ignore[return-value]
            return None
        if isinstance(where, ast.InSubquery):
            sub = self.db.table(where.sub_table)
            idx = sub.schema.column_index(where.sub_column)
            keys = [values[idx] for _, values in self.db.scan(where.sub_table)]
            if all(isinstance(k, int) for k in keys):
                return where.column, keys  # type: ignore[return-value]
            return None
        return None

    def _compile_predicate(self, table_name: str, where):
        if where is None:
            return None
        table = self.db.table(table_name)
        if isinstance(where, ast.Comparison):
            idx = table.schema.column_index(where.column)
            op, value = where.op, where.value
            ops = {
                "=": lambda x: x == value,
                "<": lambda x: x < value,
                ">": lambda x: x > value,
                "<=": lambda x: x <= value,
                ">=": lambda x: x >= value,
                "<>": lambda x: x != value,
            }
            test = ops[op]
            return lambda values: test(values[idx])
        if isinstance(where, ast.InList):
            idx = table.schema.column_index(where.column)
            wanted = set(where.values)
            return lambda values: values[idx] in wanted
        if isinstance(where, ast.InSubquery):
            idx = table.schema.column_index(where.column)
            sub = self.db.table(where.sub_table)
            sub_idx = sub.schema.column_index(where.sub_column)
            wanted = {
                values[sub_idx]
                for _, values in self.db.scan(where.sub_table)
            }
            return lambda values: values[idx] in wanted
        if isinstance(where, ast.And):
            left = self._compile_predicate(table_name, where.left)
            right = self._compile_predicate(table_name, where.right)
            return lambda values: left(values) and right(values)
        raise SqlBindError(f"unsupported predicate {type(where).__name__}")

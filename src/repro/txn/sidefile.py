"""Side-files: update capture for off-line indexes (paper §3.1.1).

While a bulk delete owns an index, concurrent updaters cannot touch it.
With the *side-file* approach (derived from Mohan & Narang's online
index creation [17]) their changes are appended to a per-index log of
``(op, key, rid)`` entries instead.  Once the bulk delete has processed
the index, the side-file is drained into it; when almost nothing is
left, updates are *quiesced*, the tail is applied, and the index comes
back on-line.

A side-file is a *file*: when the captured volume outgrows its memory
threshold it spills sealed chunks to the simulated disk (sequential
appends), and the drain streams them back in FIFO order.  High-churn
workloads therefore cannot blow up memory while an index is off-line.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.btree.tree import BLinkTree
from repro.errors import TransactionError
from repro.query.spill import SpillFile
from repro.storage.disk import SimulatedDisk


class SideFileOp(enum.Enum):
    INSERT = "insert"
    DELETE = "delete"


@dataclass(frozen=True)
class SideFileEntry:
    op: SideFileOp
    key: int
    rid: int


class SideFile:
    """Captured index updates awaiting replay.

    Entries live in memory up to ``spill_threshold``; beyond it, full
    chunks are sealed to disk (``disk`` must be given to enable
    spilling) and replayed from there in FIFO order.
    """

    def __init__(
        self,
        index_name: str,
        disk: Optional[SimulatedDisk] = None,
        spill_threshold: int = 4096,
        log: Optional[object] = None,  # repro.recovery.wal.WriteAheadLog
    ) -> None:
        self.index_name = index_name
        self.disk = disk
        #: When given, every append is also forced to the WAL, so a
        #: crash can reconstruct the side-file (§3.2: side-file changes
        #: "have to be made durable after the bulk deletion changes").
        self.log = log
        self.spill_threshold = max(1, spill_threshold)
        self._memory: List[SideFileEntry] = []
        self._chunks: List[SpillFile] = []
        self._spilled_pending = 0
        self._applied_in_memory = 0
        self.total_captured = 0
        self.quiesced = False

    def append(
        self, op: SideFileOp, key: int, rid: int
    ) -> None:
        if self.quiesced:
            raise TransactionError(
                f"index {self.index_name} is quiescing: updates must wait"
            )
        self._memory.append(SideFileEntry(op, key, rid))
        self.total_captured += 1
        if self.log is not None:
            self.log.append(
                "side_file_op",
                index=self.index_name,
                op=op.value,
                key=key,
                rid=rid,
            )
        if (
            self.disk is not None
            and len(self._memory) - self._applied_in_memory
            >= self.spill_threshold
        ):
            self._spill()

    def _spill(self) -> None:
        """Seal the unapplied in-memory tail into one disk chunk."""
        tail = self._memory[self._applied_in_memory:]
        chunk = SpillFile(self.disk, width=3)
        chunk.extend(
            (1 if e.op is SideFileOp.INSERT else 0, e.key, e.rid)
            for e in tail
        )
        chunk.seal()
        self._chunks.append(chunk)
        self._spilled_pending += len(tail)
        self._memory = []
        self._applied_in_memory = 0

    @property
    def pending(self) -> int:
        return (
            self._spilled_pending
            + len(self._memory)
            - self._applied_in_memory
        )

    def apply_batch(
        self,
        tree: BLinkTree,
        limit: Optional[int] = None,
        idempotent: bool = False,
    ) -> int:
        """Replay up to ``limit`` pending entries into ``tree``.

        Replay order matters (an insert followed by a delete of the same
        entry must cancel out), so spilled chunks are applied strictly
        before the in-memory tail, each FIFO.  Returns the number
        applied.

        ``idempotent`` makes each entry a no-op when the tree already
        reflects it (insert of a present entry, delete of an absent
        one).  Crash recovery replays side-files rebuilt from the WAL
        this way: an earlier recovery attempt may have applied a prefix
        and crashed before durably recording that it did.
        """
        applied = 0
        while self._chunks and (limit is None or applied < limit):
            # Chunks are sealed: a partially applied chunk re-spills its
            # remainder so appends can continue meanwhile.
            chunk = self._chunks.pop(0)
            rows = list(chunk)
            chunk.free()
            self._spilled_pending -= len(rows)
            take = len(rows) if limit is None else min(
                len(rows), limit - applied
            )
            for is_insert, key, rid in rows[:take]:
                self._apply_one(tree, bool(is_insert), key, rid, idempotent)
            applied += take
            if take < len(rows):
                rest = SpillFile(self.disk, width=3)
                rest.extend(rows[take:])
                rest.seal()
                self._chunks.insert(0, rest)
                self._spilled_pending += len(rows) - take
                return applied
        while self._applied_in_memory < len(self._memory):
            if limit is not None and applied >= limit:
                break
            entry = self._memory[self._applied_in_memory]
            self._apply_one(
                tree, entry.op is SideFileOp.INSERT, entry.key, entry.rid,
                idempotent,
            )
            self._applied_in_memory += 1
            applied += 1
        return applied

    @staticmethod
    def _apply_one(
        tree: BLinkTree, is_insert: bool, key: int, rid: int,
        idempotent: bool,
    ) -> None:
        if idempotent and tree.contains(key, rid) == is_insert:
            return
        if is_insert:
            tree.insert(key, rid)
        else:
            tree.delete(key, rid)

    def drain(
        self,
        tree: BLinkTree,
        quiesce_threshold: int = 16,
        batch: int = 256,
    ) -> Tuple[int, int]:
        """Drain the side-file per the paper's protocol.

        Apply in batches while the writer may still append; once fewer
        than ``quiesce_threshold`` entries remain, quiesce (further
        appends raise), apply the tail, and report
        ``(applied, batches)``.  The caller brings the index on-line
        afterwards.
        """
        applied = 0
        batches = 0
        while self.pending > quiesce_threshold:
            applied += self.apply_batch(tree, limit=batch)
            batches += 1
        self.quiesced = True
        applied += self.apply_batch(tree)
        batches += 1
        return applied, batches

    def reset(self) -> None:
        """Forget everything (after the index is back on-line)."""
        for chunk in self._chunks:
            chunk.free()
        self._chunks = []
        self._spilled_pending = 0
        self._memory = []
        self._applied_in_memory = 0
        self.total_captured = 0
        self.quiesced = False

"""Concurrency control for bulk deletes (paper Section 3.1)."""

from repro.txn.coordinator import (
    BulkDeleteCoordinator,
    CoordinatorReport,
    Phase,
    PropagationMode,
    UpdateRouter,
)
from repro.txn.locks import LockManager, LockMode
from repro.txn.sidefile import SideFile, SideFileEntry, SideFileOp
from repro.txn.transactions import Transaction, TransactionManager, TxnState

__all__ = [
    "BulkDeleteCoordinator",
    "CoordinatorReport",
    "LockManager",
    "LockMode",
    "Phase",
    "PropagationMode",
    "SideFile",
    "SideFileEntry",
    "SideFileOp",
    "Transaction",
    "TransactionManager",
    "TxnState",
    "UpdateRouter",
]

"""Table/row locking with lock escalation.

The paper argues that concurrent access during the *base-table* phase of
a bulk delete is pointless: engines with lock escalation "would switch
to an exclusive lock on the base table anyway", and engines without it
would drown in row-lock conflicts.  This module provides exactly enough
locking to express that argument and to test the coordinator's
protocol: shared/exclusive/intention modes on named resources, row
locks counted per (transaction, table), and automatic escalation to a
table lock past a threshold.

The engine is single-threaded, so a conflicting request does not block
— it raises :class:`LockConflictError`, which the concurrency tests
treat as "this transaction would have to wait".
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import LockConflictError, TransactionError


class LockMode(enum.Enum):
    """Standard multi-granularity lock modes."""

    S = "S"
    X = "X"
    IS = "IS"
    IX = "IX"


#: mode -> set of modes it is compatible with
_COMPATIBLE: Dict[LockMode, Set[LockMode]] = {
    LockMode.IS: {LockMode.IS, LockMode.IX, LockMode.S},
    LockMode.IX: {LockMode.IS, LockMode.IX},
    LockMode.S: {LockMode.IS, LockMode.S},
    LockMode.X: set(),
}

DEFAULT_ESCALATION_THRESHOLD = 1000


@dataclass
class _Grant:
    txn_id: int
    mode: LockMode


class LockManager:
    """Grants/denies locks; escalates row locks to table locks."""

    def __init__(
        self, escalation_threshold: int = DEFAULT_ESCALATION_THRESHOLD
    ) -> None:
        self.escalation_threshold = escalation_threshold
        self._table_locks: Dict[str, List[_Grant]] = defaultdict(list)
        self._row_locks: Dict[Tuple[str, object], List[_Grant]] = defaultdict(
            list
        )
        self._row_lock_counts: Dict[Tuple[int, str], int] = defaultdict(int)

    # ------------------------------------------------------------------
    # table locks
    # ------------------------------------------------------------------
    def lock_table(self, txn_id: int, table: str, mode: LockMode) -> None:
        grants = self._table_locks[table]
        for grant in grants:
            if grant.txn_id == txn_id:
                continue
            if mode not in _COMPATIBLE[grant.mode]:
                raise LockConflictError(
                    f"txn {txn_id} wants {mode.value} on {table}, "
                    f"txn {grant.txn_id} holds {grant.mode.value}"
                )
        existing = self._find(grants, txn_id)
        if existing is None:
            grants.append(_Grant(txn_id, mode))
        elif _stronger(mode, existing.mode):
            existing.mode = mode

    def lock_row(
        self, txn_id: int, table: str, row_key: object, mode: LockMode
    ) -> None:
        """Row lock (S or X); escalates to a table lock past the threshold."""
        if mode not in (LockMode.S, LockMode.X):
            raise TransactionError("row locks are S or X only")
        intent = LockMode.IS if mode is LockMode.S else LockMode.IX
        self.lock_table(txn_id, table, intent)
        grants = self._row_locks[(table, row_key)]
        for grant in grants:
            if grant.txn_id == txn_id:
                continue
            if mode not in _COMPATIBLE[grant.mode]:
                raise LockConflictError(
                    f"txn {txn_id} wants row {row_key!r} of {table} "
                    f"in {mode.value}; held by txn {grant.txn_id}"
                )
        existing = self._find(grants, txn_id)
        if existing is None:
            grants.append(_Grant(txn_id, mode))
            self._row_lock_counts[(txn_id, table)] += 1
        elif _stronger(mode, existing.mode):
            existing.mode = mode
        if self._row_lock_counts[(txn_id, table)] > self.escalation_threshold:
            self._escalate(txn_id, table, mode)

    def _escalate(self, txn_id: int, table: str, mode: LockMode) -> None:
        """Replace a transaction's row locks with one table lock."""
        table_mode = LockMode.X if mode is LockMode.X else LockMode.S
        self.lock_table(txn_id, table, table_mode)
        for key, grants in list(self._row_locks.items()):
            if key[0] != table:
                continue
            grants[:] = [g for g in grants if g.txn_id != txn_id]
            if not grants:
                del self._row_locks[key]
        self._row_lock_counts[(txn_id, table)] = 0

    # ------------------------------------------------------------------
    # release & introspection
    # ------------------------------------------------------------------
    def release_all(self, txn_id: int) -> None:
        for grants in self._table_locks.values():
            grants[:] = [g for g in grants if g.txn_id != txn_id]
        for key, grants in list(self._row_locks.items()):
            grants[:] = [g for g in grants if g.txn_id != txn_id]
            if not grants:
                del self._row_locks[key]
        for key in [k for k in self._row_lock_counts if k[0] == txn_id]:
            del self._row_lock_counts[key]

    def release_table(self, txn_id: int, table: str) -> None:
        grants = self._table_locks.get(table, [])
        grants[:] = [g for g in grants if g.txn_id != txn_id]

    def table_mode_of(self, txn_id: int, table: str) -> Optional[LockMode]:
        grant = self._find(self._table_locks.get(table, []), txn_id)
        return grant.mode if grant else None

    def holders(self, table: str) -> List[Tuple[int, LockMode]]:
        return [(g.txn_id, g.mode) for g in self._table_locks.get(table, [])]

    def row_lock_count(self, txn_id: int, table: str) -> int:
        return self._row_lock_counts.get((txn_id, table), 0)

    @staticmethod
    def _find(grants: List[_Grant], txn_id: int) -> Optional[_Grant]:
        for grant in grants:
            if grant.txn_id == txn_id:
                return grant
        return None


_STRENGTH = {LockMode.IS: 0, LockMode.IX: 1, LockMode.S: 1, LockMode.X: 2}


def _stronger(a: LockMode, b: LockMode) -> bool:
    return _STRENGTH[a] > _STRENGTH[b]

"""The concurrent bulk-delete protocol of Section 3.

The coordinator phases a vertical bulk delete so that concurrency comes
back as early as possible:

1. **Critical phase** (table X-locked, every index off-line): the
   driving index produces the RID list, unique secondary indexes are
   processed by RID probe (unique-first, §3.1.3, so their constraint
   can be enforced again), and the base table is swept.
2. **Commit point**: the table lock is released and the processed
   indexes come back on-line.  Other transactions may now read and
   update R.
3. **Propagation phase**: the remaining (non-unique) indexes are
   processed one at a time while staying off-line.  Concurrent updates
   reach them through a per-index *side-file* (replayed and quiesced
   when the index is done, §3.1.1) or by *direct propagation* under
   latches with undeletable-entry marking (§3.1.2).

``UpdateRouter`` is what concurrent transactions call instead of
``Database.insert``/``delete_record`` while a coordinator is active: it
takes row locks, applies changes to the heap and the on-line indexes,
and routes changes to off-line indexes per the propagation mode.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.catalog.catalog import IndexInfo, TableInfo
from repro.catalog.database import Database
from repro.core.bulk_ops import (
    BdResult,
    bd_heap_sorted_rids,
    bd_index_hash_probe,
    bd_index_sort_merge,
)
from repro.errors import (
    IndexOfflineError,
    TransactionError,
    UniqueViolationError,
)
from repro.query.hashtable import BoundedHashSet
from repro.query.sort import ExternalSorter
from repro.storage.rid import RID
from repro.txn.locks import LockMode
from repro.txn.sidefile import SideFile, SideFileOp
from repro.txn.transactions import Transaction, TransactionManager

Entry = Tuple[int, int]


class PropagationMode(enum.Enum):
    """How concurrent updates reach off-line indexes (§3.1)."""

    SIDE_FILE = "side-file"
    DIRECT = "direct"


class Phase(enum.Enum):
    NOT_STARTED = "not-started"
    CRITICAL = "critical"
    PROPAGATION = "propagation"
    DONE = "done"


@dataclass
class CoordinatorReport:
    """What the coordinator did, per phase."""

    records_deleted: int = 0
    critical_steps: List[BdResult] = field(default_factory=list)
    propagation_steps: List[BdResult] = field(default_factory=list)
    side_file_applied: Dict[str, int] = field(default_factory=dict)
    undeletable_protected: int = 0


class BulkDeleteCoordinator:
    """Drives one concurrent bulk delete through the §3 protocol."""

    def __init__(
        self,
        db: Database,
        table_name: str,
        column: str,
        keys: Sequence[int],
        txn_manager: Optional[TransactionManager] = None,
        mode: PropagationMode = PropagationMode.SIDE_FILE,
        log: Optional[object] = None,  # WriteAheadLog for durable capture
    ) -> None:
        self.db = db
        self.log = log
        self.table_name = table_name
        self.column = column
        self.keys = list(keys)
        self.tm = txn_manager or TransactionManager()
        self.mode = mode
        self.phase = Phase.NOT_STARTED
        self.report = CoordinatorReport()
        self.side_files: Dict[str, SideFile] = {}
        self.undeletable: Dict[str, Set[Entry]] = {}
        self._txn: Optional[Transaction] = None
        self._pairs_by_index: Dict[str, List[Entry]] = {}
        self._rid_list: List[int] = []

    # ------------------------------------------------------------------
    # phase 1: critical section
    # ------------------------------------------------------------------
    def begin(self) -> None:
        """X-lock the table and take every index off-line."""
        if self.phase is not Phase.NOT_STARTED:
            raise TransactionError(f"coordinator already {self.phase.value}")
        self._txn = self.tm.begin()
        self.tm.locks.lock_table(self._txn.txn_id, self.table_name, LockMode.X)
        table = self.db.table(self.table_name)
        if table.hash_indexes():
            raise TransactionError(
                "the concurrent bulk-delete protocol covers B-tree "
                "indexes only; drop or rebuild hash indexes separately"
            )
        for index in table.indexes.values():
            index.set_offline()
            if not index.unique and index.column != self.column:
                self.side_files[index.name] = SideFile(
                    index.name, disk=self.db.disk, log=self.log
                )
                self.undeletable[index.name] = set()
        self.phase = Phase.CRITICAL

    def process_critical_phase(self) -> None:
        """Driving index → unique indexes (RID probe) → base table."""
        if self.phase is not Phase.CRITICAL:
            raise TransactionError("begin() must run first")
        db, table = self.db, self.db.table(self.table_name)
        sorter = ExternalSorter(db.disk, db.memory_bytes, width=1)
        sorted_keys = [k for (k,) in sorter.sort((k,) for k in self.keys)]
        driving = self._driving_index(table)
        bd = bd_index_sort_merge(
            driving.tree,
            [(k, 0) for k in sorted_keys],
            db.disk,
            match_rid=False,
        )
        self.report.critical_steps.append(bd)
        self._rid_list = [rid for _, rid in bd.deleted]
        if not driving.clustered:
            rid_sorter = ExternalSorter(db.disk, db.memory_bytes, width=1)
            self._rid_list = [
                r for (r,) in rid_sorter.sort((r,) for r in self._rid_list)
            ]
        # Unique secondary indexes first, by RID probe (no keys needed).
        rid_set = BoundedHashSet(db.memory_bytes).build(self._rid_list)
        for index in table.indexes.values():
            if index.name == driving.name or not index.unique:
                continue
            self.report.critical_steps.append(
                bd_index_hash_probe(index.tree, rid_set, db.disk)
            )
        rows, table_bd = bd_heap_sorted_rids(
            table, [RID.unpack(r) for r in self._rid_list], db.disk
        )
        self.report.critical_steps.append(table_bd)
        self.report.records_deleted = len(rows)
        # Stash per-index (key, RID) projections for the propagation phase.
        for name in self.side_files:
            index = table.index(name)
            self._pairs_by_index[name] = [
                (index.key_for(values, table.schema), rid.pack())
                for rid, values in rows
            ]
        self._driving_name = driving.name

    def commit_critical(self) -> None:
        """Release the table; bring processed indexes back on-line."""
        if self.phase is not Phase.CRITICAL:
            raise TransactionError("critical phase is not active")
        table = self.db.table(self.table_name)
        assert self._txn is not None
        self.tm.commit(self._txn)
        self._txn = None
        for index in table.indexes.values():
            if index.name not in self.side_files:
                # Driving + unique indexes were fully processed.
                index.set_online()
        self.phase = Phase.PROPAGATION
        if not self.side_files:
            self.phase = Phase.DONE

    # ------------------------------------------------------------------
    # phase 2: propagation to the remaining indexes
    # ------------------------------------------------------------------
    def pending_indexes(self) -> List[str]:
        table = self.db.table(self.table_name)
        return [
            name
            for name in self.side_files
            if not table.index(name).is_online
        ]

    def process_index(self, index_name: str) -> BdResult:
        """Bulk-delete one off-line index, then bring it on-line.

        With side-files the captured updates are drained (quiesce at the
        tail); with direct propagation the tree is already current and
        the sweep just skips undeletable entries.
        """
        if self.phase is not Phase.PROPAGATION:
            raise TransactionError("not in the propagation phase")
        db, table = self.db, self.db.table(self.table_name)
        index = table.index(index_name)
        if index.is_online:
            raise TransactionError(f"index {index_name} is already on-line")
        pairs = self._pairs_by_index[index_name]
        protected = self.undeletable.get(index_name, set())
        if protected:
            # Exact-match sort/merge cannot delete a protected entry by
            # accident (its key differs), but a re-used RID *with the
            # same key* must still survive: filter those pairs out.
            pairs = [p for p in pairs if p not in protected]
            self.report.undeletable_protected += len(protected)
        sorter = ExternalSorter(db.disk, db.memory_bytes, width=2)
        sorted_pairs = list(sorter.sort(pairs))
        bd = bd_index_sort_merge(
            index.tree, sorted_pairs, db.disk, match_rid=True
        )
        self.report.propagation_steps.append(bd)
        if self.mode is PropagationMode.SIDE_FILE:
            applied, _ = self.side_files[index_name].drain(index.tree)
            self.report.side_file_applied[index_name] = applied
        self.undeletable.pop(index_name, None)
        index.set_online()
        if not self.pending_indexes():
            self.phase = Phase.DONE
        return bd

    def run_to_completion(self) -> CoordinatorReport:
        """Convenience: run every phase back to back (no concurrency)."""
        if self.phase is Phase.NOT_STARTED:
            self.begin()
        if self.phase is Phase.CRITICAL:
            self.process_critical_phase()
            self.commit_critical()
        for name in list(self.pending_indexes()):
            self.process_index(name)
        return self.report

    def _driving_index(self, table: TableInfo) -> IndexInfo:
        candidates = table.indexes_on(self.column)
        if not candidates:
            raise TransactionError(
                f"concurrent bulk delete needs an index on {self.column}"
            )
        for ix in candidates:
            if ix.clustered:
                return ix
        return candidates[0]


class UpdateRouter:
    """Entry point for transactions running beside a coordinator.

    Inserts and deletes acquire row locks (conflicting with the
    coordinator's table X lock during the critical phase), then apply to
    the heap and the on-line indexes directly, and to off-line indexes
    per the coordinator's propagation mode.
    """

    def __init__(self, db: Database, coordinator: BulkDeleteCoordinator) -> None:
        self.db = db
        self.coordinator = coordinator
        self.tm = coordinator.tm

    def insert(
        self, txn: Transaction, table_name: str, values: Sequence[object]
    ) -> RID:
        table = self.db.table(table_name)
        self.tm.locks.lock_row(
            txn.txn_id, table_name, tuple(values[:1]), LockMode.X
        )
        # Uniqueness must be checked against *on-line* unique indexes —
        # that is exactly why the coordinator processes them first.
        for index in table.indexes.values():
            if index.unique:
                if not index.is_online:
                    raise IndexOfflineError(
                        f"unique index {index.name} is off-line; cannot "
                        "check the uniqueness constraint"
                    )
                key = index.key_for(tuple(values), table.schema)
                if index.tree.contains(key):
                    raise UniqueViolationError(
                        f"duplicate key {key} for {index.name}"
                    )
        payload = table.serializer.pack(values)
        rid = table.heap.insert(payload)
        txn.on_abort(lambda: table.heap.delete(rid))
        for index in table.indexes.values():
            key = index.key_for(tuple(values), table.schema)
            self._apply_index_insert(txn, index, key, rid)
        return rid

    def delete(self, txn: Transaction, table_name: str, rid: RID) -> None:
        table = self.db.table(table_name)
        self.tm.locks.lock_row(txn.txn_id, table_name, rid, LockMode.X)
        payload = table.heap.delete(rid)
        values = table.serializer.unpack(payload)
        txn.on_abort(lambda: table.heap.insert(payload))
        for index in table.indexes.values():
            key = index.key_for(values, table.schema)
            self._apply_index_delete(txn, index, key, rid)

    # ------------------------------------------------------------------
    def _apply_index_insert(
        self, txn: Transaction, index: IndexInfo, key: int, rid: RID
    ) -> None:
        packed = rid.pack()
        if index.is_online:
            index.tree.insert(key, packed)
            txn.on_abort(lambda: index.tree.delete(key, packed))
            return
        if self.coordinator.mode is PropagationMode.SIDE_FILE:
            side = self.coordinator.side_files[index.name]
            side.append(SideFileOp.INSERT, key, packed)
            return
        # Direct propagation: install now, mark undeletable (§3.1.2).
        index.tree.insert(key, packed)
        protected = self.coordinator.undeletable[index.name]
        protected.add((key, packed))
        # "An undeletable entry can be removed as part of rollback
        # processing for the transaction that inserted it."
        def _undo() -> None:
            index.tree.delete(key, packed)
            protected.discard((key, packed))

        txn.on_abort(_undo)

    def _apply_index_delete(
        self, txn: Transaction, index: IndexInfo, key: int, rid: RID
    ) -> None:
        packed = rid.pack()
        if index.is_online:
            index.tree.delete(key, packed)
            txn.on_abort(lambda: index.tree.insert(key, packed))
            return
        if self.coordinator.mode is PropagationMode.SIDE_FILE:
            self.coordinator.side_files[index.name].append(
                SideFileOp.DELETE, key, packed
            )
            return
        index.tree.delete(key, packed)
        self.coordinator.undeletable[index.name].discard((key, packed))
        txn.on_abort(lambda: index.tree.insert(key, packed))

"""Transactions: identifiers, states, and the manager.

A deliberately small transaction layer: enough to express "this update
ran concurrently with the bulk delete" in tests and examples.  The
engine is single-threaded; interleaving is driven explicitly by the
caller (or the coordinator), so a transaction here is a locking scope
plus an undo list.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import TransactionError
from repro.txn.locks import LockManager


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class Transaction:
    """One unit of work: id, state, and compensating actions for abort."""

    txn_id: int
    state: TxnState = TxnState.ACTIVE
    _undo: List[Callable[[], None]] = field(default_factory=list)

    def on_abort(self, action: Callable[[], None]) -> None:
        """Register a compensating action, run in reverse order on abort."""
        self._require_active()
        self._undo.append(action)

    def _require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError(
                f"txn {self.txn_id} is {self.state.value}, not active"
            )


class TransactionManager:
    """Begin/commit/abort plus the shared lock manager."""

    def __init__(self, lock_manager: Optional[LockManager] = None) -> None:
        self.locks = lock_manager or LockManager()
        self._next_id = 1
        self._active: List[Transaction] = []

    def begin(self) -> Transaction:
        txn = Transaction(self._next_id)
        self._next_id += 1
        self._active.append(txn)
        return txn

    def commit(self, txn: Transaction) -> None:
        txn._require_active()
        txn.state = TxnState.COMMITTED
        txn._undo.clear()
        self.locks.release_all(txn.txn_id)
        self._active.remove(txn)

    def abort(self, txn: Transaction) -> None:
        txn._require_active()
        for action in reversed(txn._undo):
            action()
        txn._undo.clear()
        txn.state = TxnState.ABORTED
        self.locks.release_all(txn.txn_id)
        self._active.remove(txn)

    @property
    def active_transactions(self) -> List[Transaction]:
        return list(self._active)

"""Exhaustive fault sweep over the retention subsystem.

The retention analogue of :func:`repro.faults.sweep.crash_point_sweep`,
upgraded with the erasure property:

1. run a **two-policy** retention scenario fault-free — a GDPR-style
   subject erasure cascading from a heap root across CASCADE, SET NULL
   and (clean) RESTRICT edges into heap *and* LSM children, plus an
   age-expiry policy over a child table — capturing the oracle state,
   the durable-event count, and a **zero-finding erasure audit**,
2. for each swept durable event k, rebuild the identical scenario,
   crash right after event k, run :func:`recover_retention`, and
   require state == oracle, internal consistency, a clean audit, *and*
   a terminal second recovery,
3. media pass: for each swept durable page, rebuild, arm a transient
   read fault on it with :class:`~repro.media.retry.MediaRecovery`
   attached, and require the run to heal mid-policy and still reach
   the oracle with a clean audit,
4. mutation pass (:func:`audit_mutation_checks`): plant a stale index
   entry, a retained WAL full-page image, an undropped LSM tombstone,
   and a stale freed-page payload into an otherwise clean end state —
   each plant must produce at least one audit finding in the expected
   location, proving the audit is not vacuously green.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.btree.maintenance import validate_tree
from repro.catalog.database import Database
from repro.catalog.schema import Attribute, TableSchema
from repro.core.integrity import (
    ConstraintRegistry,
    OnDelete,
    SET_NULL_VALUE,
    find_referencing_keys,
)
from repro.errors import ReproError
from repro.faults.injector import FaultInjector
from repro.faults.plan import TRANSIENT, FaultPlan, SimulatedCrash
from repro.faults.sweep import (
    PointOutcome,
    SweepReport,
    TableState,
    _choose_points,
    capture_state,
)
from repro.media.retry import MediaRecovery, wal_image_source
from repro.media.sweep import MediaPointOutcome, MediaSweepReport
from repro.recovery.wal import WriteAheadLog
from repro.retention.audit import ErasureWitness, audit_erasure, build_witness
from repro.retention.policy import (
    RetentionPlan,
    RetentionPolicy,
    compile_policy,
)
from repro.retention.run import RecoverableRetentionRun, recover_retention

#: Key bases chosen so witness values are distinctive 8-byte patterns
#: that cannot collide with page headers, RIDs or surviving keys.
UID_BASE = 7_700_000
TS_BASE = 8_800_000


@dataclass(frozen=True)
class RetentionScenario:
    """Deterministic two-policy retention workload.

    ``users`` (heap root: unique UID index, secondary REGION index,
    per-row SECRET payload) fans out over four FK edges: ``orders``
    (CASCADE, heap, indexes on OUID and TS), ``profiles`` (SET NULL,
    heap), ``audits`` (RESTRICT, references survivors only — the clean
    abort path), and ``events`` (CASCADE, LSM keyed by EUID).  Policy 1
    erases a victim subset of users everywhere; policy 2 expires the
    oldest orders by TS — overlapping the cascade, which the idempotent
    node contract must tolerate.
    """

    users: int = 12
    victims: int = 4
    orders_per_user: int = 2
    expired_orders: int = 5
    seed: int = 11
    page_size: int = 512
    memory_pages: int = 24

    def build(self) -> "RetentionCase":
        if not 0 < self.victims < self.users:
            raise ReproError("need 1 <= victims < users")
        db = Database(
            page_size=self.page_size,
            memory_bytes=self.memory_pages * self.page_size,
        )
        rng = random.Random(self.seed)
        uids = [UID_BASE + i + 1 for i in range(self.users)]
        victims = sorted(rng.sample(uids, self.victims))
        survivors = [u for u in uids if u not in set(victims)]

        db.create_table(TableSchema.of("users", [
            Attribute.int_("UID"), Attribute.int_("REGION"),
            Attribute.char("SECRET", 12),
        ]))
        db.load_table("users", [
            (uid, 100 + i % 3, f"S{uid}!") for i, uid in enumerate(uids)
        ])
        db.create_index("users", "UID", unique=True)
        db.create_index("users", "REGION")

        order_rows = []
        ts = TS_BASE
        for uid in uids:
            for _ in range(self.orders_per_user):
                ts += 1
                order_rows.append((uid, ts, f"T{ts}!"))
        rng.shuffle(order_rows)
        db.create_table(TableSchema.of("orders", [
            Attribute.int_("OUID"), Attribute.int_("TS"),
            Attribute.char("TAG", 12),
        ]))
        db.load_table("orders", order_rows)
        db.create_index("orders", "OUID")
        db.create_index("orders", "TS")
        cutoff = TS_BASE + self.expired_orders + 1

        db.create_table(TableSchema.of("profiles", [
            Attribute.int_("PUID"), Attribute.char("NOTE", 8),
        ]))
        db.load_table("profiles", [(uid, "pro") for uid in uids])
        db.create_index("profiles", "PUID")

        db.create_table(TableSchema.of("audits", [
            Attribute.int_("AUID"), Attribute.char("NOTE", 8),
        ]))
        db.load_table("audits", [
            (survivors[i % len(survivors)], "aud")
            for i in range(len(survivors))
        ])
        db.create_index("audits", "AUID")

        db.create_table(
            TableSchema.of("events", [
                Attribute.int_("EUID"), Attribute.char("EPAYLOAD", 12),
            ]),
            engine="lsm",
            key_column="EUID",
        )
        db.load_table("events", [(uid, f"E{uid}!") for uid in uids])

        registry = ConstraintRegistry(db)
        registry.add_foreign_key(
            "orders", "OUID", "users", "UID", OnDelete.CASCADE
        )
        registry.add_foreign_key(
            "profiles", "PUID", "users", "UID", OnDelete.SET_NULL
        )
        registry.add_foreign_key(
            "audits", "AUID", "users", "UID", OnDelete.RESTRICT
        )
        registry.add_foreign_key(
            "events", "EUID", "users", "UID", OnDelete.CASCADE
        )
        db.flush()

        policies = [
            RetentionPolicy(
                "subject-erasure", "users", "UID",
                subject_keys=tuple(victims),
            ),
            RetentionPolicy("order-expiry", "orders", "TS", cutoff=cutoff),
        ]
        expired_ts = [
            t for (_, t, _) in order_rows if t < cutoff
        ]
        victim_set = set(victims)
        patterns = (
            [f"S{uid}!".encode() for uid in victims]
            + [
                tag.encode()
                for (uid, t, tag) in order_rows
                if uid in victim_set or t < cutoff
            ]
            + [f"E{uid}!".encode() for uid in victims]
        )
        return RetentionCase(
            db=db,
            log=WriteAheadLog(db.disk),
            registry=registry,
            policies=policies,
            victims=victims,
            expired_ts=sorted(expired_ts),
            patterns=sorted(patterns),
        )


@dataclass
class RetentionCase:
    """One built scenario instance."""

    db: Database
    log: WriteAheadLog
    registry: ConstraintRegistry
    policies: List[RetentionPolicy]
    victims: List[int]
    expired_ts: List[int]
    patterns: List[bytes]

    def compile(self) -> List[RetentionPlan]:
        return [
            compile_policy(self.db, self.registry, policy)
            for policy in self.policies
        ]

    def witness(self, plans: List[RetentionPlan]) -> ErasureWitness:
        return build_witness(plans, patterns=self.patterns)


def retention_integrity_problems(
    db: Database,
    registry: ConstraintRegistry,
    deleted_keys: List[int],
    limit: int = 20,
) -> List[str]:
    """LSM-aware internal-consistency check for the retention scenario.

    Mirrors :func:`repro.faults.sweep.integrity_problems` for heap
    tables; LSM tables are checked through their own scan/count API
    (their catalog heap is legitimately empty).  SET NULL children are
    allowed to hold ``SET_NULL_VALUE``, never a deleted parent key.
    """
    problems: List[str] = []

    def note(message: str) -> None:
        if len(problems) < limit:
            problems.append(message)

    for table in db.catalog.tables():
        table_name = table.schema.name
        actual = list(db.scan(table_name))
        if table.lsm is not None:
            if table.lsm.tombstone_count and not table.lsm.memtable.entries:
                note(f"{table_name}: undropped run tombstones remain")
            continue
        if table.heap.record_count != len(actual):
            note(
                f"{table_name}: heap record_count "
                f"{table.heap.record_count} != {len(actual)} scanned rows"
            )
        for name, ix in sorted(table.indexes.items()):
            if not ix.is_btree:
                continue
            try:
                validate_tree(ix.tree)
            except ReproError as exc:
                note(f"{table_name}.{name}: structural: {exc}")
                continue
            items = list(ix.tree.items())
            if ix.tree.entry_count != len(items):
                note(
                    f"{table_name}.{name}: entry_count "
                    f"{ix.tree.entry_count} != {len(items)} entries"
                )
            expected = sorted(
                (ix.key_for(values, table.schema), rid.pack())
                for rid, values in actual
            )
            if sorted(items) != expected:
                note(
                    f"{table_name}.{name}: {len(items)} entries do not "
                    f"match the {len(actual)} heap rows"
                )
    for fk in registry.all_constraints():
        if fk.on_delete is OnDelete.SET_NULL:
            refs = find_referencing_keys(db, fk, deleted_keys)
            if refs:
                note(
                    f"fk {fk.describe()}: {len(refs)} un-nulled "
                    "references to deleted parent keys"
                )
            continue
        refs = find_referencing_keys(db, fk, deleted_keys)
        if refs:
            note(
                f"fk {fk.describe()}: {len(refs)} references to "
                "deleted parent keys"
            )
    return problems


def _issue_run(
    case: RetentionCase,
    plans: List[RetentionPlan],
    faults: Optional[FaultInjector] = None,
    media: Optional[MediaRecovery] = None,
):
    return RecoverableRetentionRun(
        case.db, plans, case.log,
        faults=faults, full_page_writes=True, media=media,
    ).run()


def _point_problems(
    case: RetentionCase,
    plans: List[RetentionPlan],
    oracle: Dict[str, TableState],
) -> List[str]:
    """The retention acceptance predicate for one recovered point."""
    problems: List[str] = []
    state = capture_state(case.db)
    if state != oracle:
        problems.append("state != oracle after recovery")
    problems.extend(
        retention_integrity_problems(case.db, case.registry, case.victims)
    )
    audit = audit_erasure(case.db, case.log, case.witness(plans))
    for finding in audit.findings[:5]:
        problems.append(f"audit: {finding.describe()}")
    return problems


def retention_sweep(
    scenario: Optional[RetentionScenario] = None,
    max_points: Optional[int] = None,
    log_fn: Optional[Callable[[str], None]] = None,
) -> SweepReport:
    """Crash at every (or ``max_points`` evenly spaced) durable event
    of the two-policy run; recover, resume, and audit."""
    scenario = scenario or RetentionScenario()
    say = log_fn or (lambda message: None)

    case = scenario.build()
    plans = case.compile()
    initial = capture_state(case.db)
    counter = FaultInjector()
    _issue_run(case, plans, faults=counter)
    oracle = capture_state(case.db)
    oracle_problems = _point_problems(case, plans, oracle)
    if oracle_problems:
        raise ReproError(
            "fault-free oracle run is already failing: "
            + "; ".join(oracle_problems)
        )

    report = SweepReport(durable_events=counter.durable_event_count)
    report.points = _choose_points(counter.durable_event_count, max_points)
    say(
        f"oracle: {counter.durable_event_count} durable events; "
        f"sweeping {len(report.points)} crash points"
    )
    for k in report.points:
        outcome = _run_crash_point(scenario, k, initial, oracle)
        report.outcomes.append(outcome)
        if not outcome.ok:
            say(f"  event {k}: FAIL: {outcome.problems[0]}")
    return report


def _run_crash_point(
    scenario: RetentionScenario,
    event: int,
    initial: Dict[str, TableState],
    oracle: Dict[str, TableState],
) -> PointOutcome:
    outcome = PointOutcome(event=event, second_event=None)
    case = scenario.build()
    plans = case.compile()
    try:
        _issue_run(
            case, plans,
            faults=FaultInjector(FaultPlan(crash_after_event=event)),
        )
    except SimulatedCrash as exc:
        outcome.crash = str(exc)
    if outcome.crash is None:
        outcome.problems.append(f"no crash fired at durable event {event}")
        return outcome

    recovery = recover_retention(case.db, case.log, full_page_writes=True)
    if not recovery.resumed and capture_state(case.db) != oracle:
        # The begin record died with the crash: nothing durable started,
        # so the client re-issues the whole run — legitimate only from
        # the pristine pre-run state.  (A crash right after the final
        # ``retention_end`` append also resumes nothing: the run is
        # simply complete, and the oracle comparison above covers it.)
        if capture_state(case.db) != initial:
            outcome.problems.append(
                "run never began, yet the state is not pristine"
            )
            return outcome
        _issue_run(case, case.compile())
    outcome.problems.extend(_point_problems(case, plans, oracle))
    if recover_retention(case.db, case.log).resumed:
        outcome.problems.append(
            "recovery is not terminal (a further recover resumed)"
        )
    return outcome


def retention_media_sweep(
    scenario: Optional[RetentionScenario] = None,
    max_points: Optional[int] = None,
    log_fn: Optional[Callable[[str], None]] = None,
) -> MediaSweepReport:
    """Transient-fault every (or ``max_points`` sampled) pre-run durable
    page mid-policy; the run must heal through MediaRecovery's bounded
    retry/backoff and still reach the oracle with a clean audit."""
    scenario = scenario or RetentionScenario()
    say = log_fn or (lambda message: None)

    case = scenario.build()
    plans = case.compile()
    pages = case.db.disk.page_ids()
    _issue_run(case, plans)
    oracle = capture_state(case.db)
    oracle_problems = _point_problems(case, plans, oracle)
    if oracle_problems:
        raise ReproError(
            "fault-free oracle run is already failing: "
            + "; ".join(oracle_problems)
        )

    report = MediaSweepReport(durable_pages=len(pages))
    report.pages = [
        pages[i - 1] for i in _choose_points(len(pages), max_points)
    ]
    say(
        f"oracle: {len(pages)} durable pages; transient-faulting "
        f"{len(report.pages)} of them"
    )
    for page_id in report.pages:
        outcome = MediaPointOutcome(page_id=page_id, kind=TRANSIENT)
        point = scenario.build()
        point_plans = point.compile()
        media = MediaRecovery(
            point.db.disk,
            image_sources=[("wal", wal_image_source(point.log))],
        )
        try:
            _issue_run(
                point, point_plans,
                faults=FaultInjector(FaultPlan(
                    read_fault=TRANSIENT, read_fault_page=page_id,
                )),
                media=media,
            )
            outcome.outcome = "healed"
        except ReproError as exc:
            outcome.problems.append(
                f"run did not heal a transient fault: {exc}"
            )
        if not outcome.problems:
            outcome.problems.extend(
                _point_problems(point, point_plans, oracle)
            )
        report.outcomes.append(outcome)
        if not outcome.ok:
            say(f"  page {page_id}: FAIL: {outcome.problems[0]}")
    return report


# ----------------------------------------------------------------------
# audit mutation tests: the audit must catch planted traces
# ----------------------------------------------------------------------
def audit_mutation_checks(
    scenario: Optional[RetentionScenario] = None,
    log_fn: Optional[Callable[[str], None]] = None,
) -> List[str]:
    """Prove the audit non-vacuous: each planted stale trace must be
    caught, in the expected location.  Returns failure strings."""
    scenario = scenario or RetentionScenario()
    say = log_fn or (lambda message: None)
    failures: List[str] = []

    def check(label: str, plant: Callable[[RetentionCase], None],
              location: str) -> None:
        case = scenario.build()
        plans = case.compile()
        _issue_run(case, plans)
        baseline = audit_erasure(case.db, case.log, case.witness(plans))
        if not baseline.ok:
            failures.append(
                f"{label}: baseline audit already dirty: "
                + baseline.findings[0].describe()
            )
            return
        plant(case)
        audit = audit_erasure(case.db, case.log, case.witness(plans))
        hits = [f for f in audit.findings if f.location == location]
        if hits:
            say(f"  {label}: caught ({hits[0].describe()})")
        else:
            failures.append(
                f"{label}: planted trace not detected (findings: "
                f"{[f.location for f in audit.findings]})"
            )

    def plant_index_entry(case: RetentionCase) -> None:
        # A stale B-tree entry for an erased user, as if one leaf
        # delete had been lost.
        ix = case.db.table("users").indexes["I_users_UID"]
        ix.tree.insert(case.victims[0], 7)  # type: ignore[union-attr]

    def plant_wal_image(case: RetentionCase) -> None:
        # A retained pre-delete full-page image: overwrite one redacted
        # image with bytes still holding a victim's SECRET payload.
        for record in case.log.records("page_image"):
            image = bytearray(record.payload["image"])
            secret = f"S{case.victims[0]}!".encode()
            image[64:64 + len(secret)] = secret
            record.payload["image"] = bytes(image)
            return
        raise ReproError("scenario produced no page_image records")

    def plant_lsm_tombstone(case: RetentionCase) -> None:
        # An undropped tombstone still *naming* the erased key.
        lsm = case.db.table("events").lsm
        assert lsm is not None
        lsm.delete(case.victims[0])

    def plant_freed_page(case: RetentionCase) -> None:
        # Stale victim bytes resurfacing on a freed-but-retained page,
        # as if the erase pass had skipped the shred.
        disk = case.db.disk
        freed = disk.freed_page_ids()
        if not freed:
            raise ReproError("scenario freed no pages")
        image = bytearray(disk.page_size)
        secret = f"S{case.victims[0]}!".encode()
        image[32:32 + len(secret)] = secret
        disk.corrupt_page(freed[0], bytes(image))

    check("stale index entry", plant_index_entry, "btree")
    check("retained WAL image", plant_wal_image, "wal-image")
    check("undropped LSM tombstone", plant_lsm_tombstone, "lsm")
    check("unshredded freed page", plant_freed_page, "freed-page")
    return failures

"""Forensic unrecoverability auditor.

After a retention run, :func:`audit_erasure` plays the adversary from
the privacy-deletion threat model: someone with the disk image and the
WAL, looking for any durable trace of the erased rows.  It sweeps

* **every durable page** — live *and* freed-but-retained — via the
  disk's uncharged :meth:`~repro.storage.disk.SimulatedDisk.durable_image`
  (the "platter" view: freed bytes linger until overwritten, whatever
  the access policy says about reading them through the normal path),
  byte-scanning for the witness's distinctive payload patterns,
* the **heap** of every witness table: live records whose witness
  column still holds an erased key,
* every **B+-tree** and **hash** index leaf: entries keyed by an
  erased value (stale slack bytes past the live entry region are
  caught by the raw page scan above),
* **side-files**: pending index updates naming an erased key,
* the **WAL**: logical redo records (``heap_deletes``/``leaf_deletes``)
  and retention records still carrying erased keys, full-page images
  containing witness bytes, and the materialized key spill pages of
  every bulk statement (scanned as packed int64s — they hold nothing
  but victim keys),
* the **LSM trees**: memtable entries, point and range tombstones that
  still *name* an erased key (a tombstone advertises that the key
  existed — Lethe's motivation for bounded tombstone lifetimes), every
  run's items, run metadata whose key bounds are erased keys, and the
  manifest/log pages (covered by the raw page scan).

Every hit becomes a typed :class:`ErasureFinding`; a clean audit is an
empty findings list.  The audit itself is mutation-tested (see
``repro.retention.sweep``): planted traces must be caught, so a green
audit is evidence, not vacuity.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.catalog.database import Database
from repro.recovery.wal import WriteAheadLog
from repro.retention.policy import ACTION_DELETE, RetentionPlan
from repro.txn.sidefile import SideFile

_INT64 = struct.Struct("<q")


@dataclass(frozen=True)
class ErasureWitness:
    """What the auditor hunts for.

    ``keys`` maps ``(table, column)`` to the erased key values of that
    column; ``patterns`` are distinctive payload byte strings (e.g. the
    victims' CHAR field contents) searched for on every durable page
    and WAL image.  Patterns should be unique enough not to occur in
    surviving rows — the *scenario* guarantees that, not the auditor.
    """

    keys: Dict[Tuple[str, str], frozenset] = field(default_factory=dict)
    patterns: Tuple[bytes, ...] = ()

    def keys_for(self, table: str, column: str) -> frozenset:
        return self.keys.get((table, column), frozenset())

    def tables(self) -> List[Tuple[str, str]]:
        return sorted(self.keys)


def build_witness(
    plans: Sequence[RetentionPlan],
    patterns: Sequence[bytes] = (),
) -> ErasureWitness:
    """Witness for the *delete* nodes of compiled plans.

    SET NULL nodes are excluded: their rows survive (with the key
    column nulled), so the erased parent key legitimately stays absent
    rather than erased from those tables.
    """
    keys: Dict[Tuple[str, str], Set[int]] = {}
    for plan in plans:
        for node in plan.nodes:
            if node.action != ACTION_DELETE or not node.keys:
                continue
            keys.setdefault((node.table, node.column), set()).update(
                node.keys
            )
    return ErasureWitness(
        keys={slot: frozenset(values) for slot, values in keys.items()},
        patterns=tuple(patterns),
    )


@dataclass(frozen=True)
class ErasureFinding:
    """One durable trace of an erased value."""

    #: Where the trace lives: ``heap``, ``btree``, ``hash``, ``page``,
    #: ``freed-page``, ``wal``, ``wal-image``, ``spill``, ``lsm``,
    #: ``side-file``.
    location: str
    detail: str
    table: str = ""
    page_id: Optional[int] = None

    def describe(self) -> str:
        where = f" page={self.page_id}" if self.page_id is not None else ""
        target = f" [{self.table}]" if self.table else ""
        return f"{self.location}{target}{where}: {self.detail}"


@dataclass
class ErasureReport:
    """Outcome of one audit sweep."""

    findings: List[ErasureFinding] = field(default_factory=list)
    pages_scanned: int = 0
    wal_records_scanned: int = 0
    structures_scanned: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        head = (
            f"erasure audit: {len(self.findings)} finding(s) over "
            f"{self.pages_scanned} pages, {self.wal_records_scanned} WAL "
            f"records, {self.structures_scanned} structures"
        )
        lines = [head]
        for finding in self.findings[:20]:
            lines.append(f"  - {finding.describe()}")
        if len(self.findings) > 20:
            lines.append(f"  ... and {len(self.findings) - 20} more")
        return "\n".join(lines)


def audit_erasure(
    db: Database,
    log: WriteAheadLog,
    witness: ErasureWitness,
    side_files: Optional[Dict[str, SideFile]] = None,
) -> ErasureReport:
    """Sweep every durable surface for traces of ``witness``."""
    report = ErasureReport()
    _scan_all_pages(db, witness, report)
    _scan_heaps(db, witness, report)
    _scan_indexes(db, witness, report)
    _scan_lsm(db, witness, report)
    _scan_wal(db, log, witness, report)
    _scan_side_files(side_files or {}, witness, report)
    obs = db.obs
    if obs is not None:
        obs.on_retention_audit(  # type: ignore[attr-defined]
            report.pages_scanned, len(report.findings)
        )
    return report


# ----------------------------------------------------------------------
# physical surface: every durable page, live or freed
# ----------------------------------------------------------------------
def _scan_image(
    image: bytes,
    witness: ErasureWitness,
    report: ErasureReport,
    location: str,
    page_id: Optional[int],
    detail_prefix: str = "",
) -> None:
    for pattern in witness.patterns:
        if pattern in image:
            report.findings.append(ErasureFinding(
                location=location,
                detail=(
                    f"{detail_prefix}witness bytes {pattern!r} present"
                ),
                page_id=page_id,
            ))


def _scan_all_pages(
    db: Database, witness: ErasureWitness, report: ErasureReport
) -> None:
    disk = db.disk
    for page_id in disk.page_ids():
        report.pages_scanned += 1
        _scan_image(
            disk.durable_image(page_id), witness, report, "page", page_id
        )
    for page_id in disk.freed_page_ids():
        report.pages_scanned += 1
        _scan_image(
            disk.durable_image(page_id), witness, report,
            "freed-page", page_id,
            detail_prefix="freed-but-retained: ",
        )


# ----------------------------------------------------------------------
# logical surfaces: heap records, index entries
# ----------------------------------------------------------------------
def _scan_heaps(
    db: Database, witness: ErasureWitness, report: ErasureReport
) -> None:
    for table_name, column in witness.tables():
        table = db.table(table_name)
        if table.lsm is not None:
            continue  # LSM tables are swept by _scan_lsm
        report.structures_scanned += 1
        keys = witness.keys_for(table_name, column)
        column_idx = table.schema.column_index(column)
        for rid, payload in table.heap.scan():
            values = table.serializer.unpack(payload)
            if values[column_idx] in keys:
                report.findings.append(ErasureFinding(
                    location="heap",
                    detail=(
                        f"live record {rid} still holds erased "
                        f"{column}={values[column_idx]}"
                    ),
                    table=table_name,
                    page_id=rid.page_id,
                ))


def _scan_indexes(
    db: Database, witness: ErasureWitness, report: ErasureReport
) -> None:
    for table_name, column in witness.tables():
        table = db.table(table_name)
        if table.lsm is not None:
            continue
        keys = witness.keys_for(table_name, column)
        for name, ix in sorted(table.indexes.items()):
            if ix.columns != (column,) and ix.column != column:
                continue  # keyed by another column: no erased key appears
            report.structures_scanned += 1
            if ix.is_btree:
                entries = ix.tree.range_scan()  # type: ignore[union-attr]
                location = "btree"
            else:
                entries = ix.hash_index.items()  # type: ignore[union-attr]
                location = "hash"
            for key, packed_rid in entries:
                if key in keys:
                    report.findings.append(ErasureFinding(
                        location=location,
                        detail=(
                            f"index {name} entry ({key}, rid={packed_rid}) "
                            "references an erased key"
                        ),
                        table=table_name,
                    ))


# ----------------------------------------------------------------------
# LSM: memtable, tombstones, runs, run metadata
# ----------------------------------------------------------------------
def _scan_lsm(
    db: Database, witness: ErasureWitness, report: ErasureReport
) -> None:
    from repro.lsm.sstable import run_iter

    for table_name, column in witness.tables():
        table = db.table(table_name)
        lsm = table.lsm
        if lsm is None:
            continue
        report.structures_scanned += 1
        keys = witness.keys_for(table_name, column)

        for key, (seq, payload) in sorted(lsm.memtable.entries.items()):
            if key in keys:
                what = "tombstone" if payload is None else "entry"
                report.findings.append(ErasureFinding(
                    location="lsm",
                    detail=f"memtable {what} still names erased key {key}",
                    table=table_name,
                ))
        tomb_ranges = list(lsm.memtable.ranges)
        for level, runs in enumerate(lsm.levels):
            for meta in runs:
                for bound_name, bound in (
                    ("key_min", meta.key_min), ("key_max", meta.key_max)
                ):
                    if bound in keys:
                        report.findings.append(ErasureFinding(
                            location="lsm",
                            detail=(
                                f"L{level} run metadata {bound_name}="
                                f"{bound} is an erased key"
                            ),
                            table=table_name,
                        ))
                tomb_ranges.extend(meta.ranges)
                for key, seq, payload in run_iter(db.pool, meta):
                    if key in keys:
                        what = "tombstone" if payload is None else "item"
                        report.findings.append(ErasureFinding(
                            location="lsm",
                            detail=(
                                f"L{level} run {what} still names erased "
                                f"key {key}"
                            ),
                            table=table_name,
                        ))
                    elif payload is not None:
                        _scan_image(
                            payload, witness, report, "lsm", None,
                            detail_prefix=f"L{level} run payload: ",
                        )
        for tomb in tomb_ranges:
            if any(tomb.lo <= key <= tomb.hi for key in sorted(keys)):
                report.findings.append(ErasureFinding(
                    location="lsm",
                    detail=(
                        f"range tombstone [{tomb.lo}, {tomb.hi}] still "
                        "covers erased keys"
                    ),
                    table=table_name,
                ))


# ----------------------------------------------------------------------
# WAL: logical records, retention records, images, key spill pages
# ----------------------------------------------------------------------
def _all_witness_keys(witness: ErasureWitness) -> frozenset:
    merged: Set[int] = set()
    for values in witness.keys.values():
        merged |= values
    return frozenset(merged)


def _scan_wal(
    db: Database,
    log: WriteAheadLog,
    witness: ErasureWitness,
    report: ErasureReport,
) -> None:
    every_key = _all_witness_keys(witness)
    spill_pages: List[Tuple[int, int]] = []  # (page_id, record lsn)
    for record in log.records():
        report.wal_records_scanned += 1
        payload = record.payload
        if record.kind in ("heap_deletes", "leaf_deletes"):
            for entry in payload.get("entries", ()):
                hit = [v for v in entry if v in every_key]
                if hit:
                    report.findings.append(ErasureFinding(
                        location="wal",
                        detail=(
                            f"{record.kind}@{record.lsn} entry still "
                            f"carries erased key(s) {hit}"
                        ),
                    ))
        elif record.kind == "retention_begin":
            for node_payload in payload.get("nodes", ()):
                hit = sorted(
                    set(node_payload.get("keys", ())) & every_key
                )
                if hit:
                    report.findings.append(ErasureFinding(
                        location="wal",
                        detail=(
                            f"retention_begin@{record.lsn} node for "
                            f"{node_payload['table']} still lists erased "
                            f"key(s) {hit[:5]}"
                        ),
                    ))
        elif record.kind == "retention_nullout":
            hit = sorted(set(payload.get("keys", ())) & every_key)
            if hit:
                report.findings.append(ErasureFinding(
                    location="wal",
                    detail=(
                        f"retention_nullout@{record.lsn} still lists "
                        f"erased key(s) {hit[:5]}"
                    ),
                ))
        elif record.kind == "page_image":
            _scan_image(
                payload["image"], witness, report, "wal-image",
                payload["page_id"],
                detail_prefix=f"full-page image @{record.lsn}: ",
            )
        elif record.kind == "materialized":
            for page_id in payload.get("page_ids", ()):
                spill_pages.append((page_id, record.lsn))

    # The key spill pages hold nothing but packed victim keys/RIDs:
    # scan them as aligned little-endian int64s.
    for page_id, lsn in spill_pages:
        image = db.disk.durable_image(page_id)
        report.pages_scanned += 1
        hits = sorted({
            value
            for (value,) in _INT64.iter_unpack(
                image[: len(image) - len(image) % 8]
            )
            if value in every_key
        })
        if hits:
            report.findings.append(ErasureFinding(
                location="spill",
                detail=(
                    f"materialized@{lsn} spill page still holds erased "
                    f"key(s) {hits[:5]}"
                ),
                page_id=page_id,
            ))


def _scan_side_files(
    side_files: Dict[str, SideFile],
    witness: ErasureWitness,
    report: ErasureReport,
) -> None:
    every_key = _all_witness_keys(witness)
    for name in sorted(side_files):
        side = side_files[name]
        report.structures_scanned += 1
        for entry in side._memory[side._applied_in_memory:]:
            if entry.key in every_key:
                report.findings.append(ErasureFinding(
                    location="side-file",
                    detail=(
                        f"side-file {name} pending {entry.op.value} still "
                        f"names erased key {entry.key}"
                    ),
                ))

"""Retention/compliance deletion: policies, resumable runs, audits.

The subsystem turns the paper's single-statement bulk delete into an
end-to-end erasure guarantee: a declarative :class:`RetentionPolicy`
is compiled into a cascading multi-table DAG (:func:`compile_policy`),
executed crash-resumably (:class:`RecoverableRetentionRun` /
:func:`recover_retention`), physically erased (the run's erase phase),
and verified unrecoverable by a forensic sweep
(:func:`audit_erasure`).  ``repro.retention.sweep`` fault-sweeps the
whole pipeline.  See ``docs/retention.md``.
"""

from repro.retention.audit import (
    ErasureFinding,
    ErasureReport,
    ErasureWitness,
    audit_erasure,
    build_witness,
)
from repro.retention.policy import (
    RetentionNode,
    RetentionPlan,
    RetentionPolicy,
    compile_policy,
    resolve_root_keys,
)
from repro.retention.run import (
    EraseReport,
    RecoverableRetentionRun,
    RetentionRecoveryReport,
    RetentionRunReport,
    recover_retention,
)
from repro.retention.sweep import (
    RetentionScenario,
    audit_mutation_checks,
    retention_integrity_problems,
    retention_media_sweep,
    retention_sweep,
)

__all__ = [
    "ErasureFinding",
    "ErasureReport",
    "ErasureWitness",
    "EraseReport",
    "RecoverableRetentionRun",
    "RetentionNode",
    "RetentionPlan",
    "RetentionPolicy",
    "RetentionRecoveryReport",
    "RetentionRunReport",
    "RetentionScenario",
    "audit_erasure",
    "audit_mutation_checks",
    "build_witness",
    "compile_policy",
    "recover_retention",
    "resolve_root_keys",
    "retention_integrity_problems",
    "retention_media_sweep",
    "retention_sweep",
]

"""Retention policies and the deterministic policy compiler.

A :class:`RetentionPolicy` states *what* must be erased — "every row of
the root table whose key is one of these subjects" (GDPR-style
subject erasure) or "every row older than this cutoff" (age-based
expiry).  :func:`compile_policy` turns one policy into a
:class:`RetentionPlan`: a multi-table cascading bulk-delete DAG in
topological (children-first) order over the FK registry, with one
engine-dispatched per-table plan per node — heap/B+-tree tables get a
vertical :class:`~repro.core.plans.BulkDeletePlan` via ``choose_plan``,
LSM tables a tombstone :class:`~repro.lsm.planning.LsmDeletePlan` —
so both storage engines can appear in a single policy.

Compilation is *read-only* and **deterministic**: the same policy
against the same catalog produces a byte-identical DAG and EXPLAIN
text across runs and hash seeds (FKs in registration order, keys
sorted, no set-iteration order anywhere).  RESTRICT violations are
raised here, before anything durable happens, so a restricted policy
aborts cleanly with nothing to undo.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.catalog.database import Database
from repro.core.integrity import (
    ConstraintRegistry,
    OnDelete,
    SET_NULL_VALUE,
    find_referencing_keys,
)
from repro.core.planner import choose_plan
from repro.errors import IntegrityViolationError, PlanningError

ACTION_DELETE = "delete"
ACTION_SET_NULL = "set-null"

ENGINE_HEAP = "heap"
ENGINE_LSM = "lsm"


@dataclass(frozen=True)
class RetentionPolicy:
    """One erasure obligation over a root table.

    ``subject_keys`` names the victims directly (subject erasure);
    ``cutoff`` instead selects every row whose ``column`` value is
    strictly below it (age expiry).  Exactly one of the two forms must
    be used.
    """

    name: str
    table: str
    column: str
    subject_keys: Tuple[int, ...] = ()
    cutoff: Optional[int] = None

    def __post_init__(self) -> None:
        if bool(self.subject_keys) == (self.cutoff is not None):
            raise PlanningError(
                f"policy {self.name}: give subject_keys or cutoff, "
                "not both and not neither"
            )

    @property
    def kind(self) -> str:
        return "subject" if self.cutoff is None else "age"

    def describe(self) -> str:
        if self.cutoff is None:
            return (
                f"policy {self.name}: erase {self.table} where "
                f"{self.column} in [{len(self.subject_keys)} subjects]"
            )
        return (
            f"policy {self.name}: expire {self.table} where "
            f"{self.column} < {self.cutoff}"
        )


@dataclass
class RetentionNode:
    """One bulk statement of the compiled DAG.

    ``keys`` are the values of ``column`` the statement targets;
    ``action`` is ``delete`` or ``set-null``; ``via`` records the FK
    edges that contributed keys (registration order, for EXPLAIN).
    """

    table: str
    column: str
    keys: Tuple[int, ...]
    action: str
    engine: str
    via: Tuple[str, ...] = ()
    plan_explain: str = ""

    def describe(self) -> str:
        return (
            f"{self.action} {self.table}.{self.column} "
            f"[{len(self.keys)} keys, {self.engine}]"
        )


@dataclass
class RetentionPlan:
    """The compiled, children-first DAG for one policy."""

    policy: RetentionPolicy
    nodes: List[RetentionNode] = field(default_factory=list)
    #: FK constraints checked during compilation, in check order.
    checked: List[str] = field(default_factory=list)
    #: Every table reachable from the root via CASCADE/SET NULL edges
    #: (root included), in first-reached order — the coverage set the
    #: ``plan/retention-coverage`` lint verifies against the nodes.
    reachable: List[str] = field(default_factory=list)
    #: Tables guarded by a (clean) RESTRICT edge: reachable, but the
    #: constraint forbids touching them — excluded from coverage.
    restricted: List[str] = field(default_factory=list)

    @property
    def root_keys(self) -> Tuple[int, ...]:
        for node in self.nodes:
            if node.table == self.policy.table:
                return node.keys
        return ()

    def explain(self) -> str:
        lines = [self.policy.describe()]
        lines.append(
            f"  reachable tables: {', '.join(self.reachable)}"
        )
        if self.restricted:
            lines.append(
                f"  restricted (untouched): {', '.join(self.restricted)}"
            )
        for check in self.checked:
            lines.append(f"  checked: {check}")
        for order, node in enumerate(self.nodes, start=1):
            lines.append(f"  {order}. {node.describe()}")
            for edge in node.via:
                lines.append(f"     via {edge}")
            for plan_line in node.plan_explain.splitlines():
                lines.append(f"     | {plan_line}")
        return "\n".join(lines)


def resolve_root_keys(db: Database, policy: RetentionPolicy) -> List[int]:
    """The root table's victim keys, resolved read-only.

    Subject policies return their subjects verbatim (the delete list
    *is* the value set, matching the FK checker); age policies scan the
    root table once — engine-agnostic via ``db.scan`` — collecting the
    distinct ``column`` values below the cutoff.
    """
    if policy.cutoff is None:
        return sorted(set(policy.subject_keys))
    table = db.table(policy.table)
    column_idx = table.schema.column_index(policy.column)
    found = set()
    for _, values in db.scan(policy.table):
        db.disk.charge_cpu_records(1)
        value = values[column_idx]
        if value < policy.cutoff:  # type: ignore[operator]
            found.add(value)
    return sorted(found)  # type: ignore[arg-type]


def _node_plan_explain(
    db: Database, table_name: str, column: str, keys: Sequence[int],
    action: str,
) -> str:
    """Engine-dispatched per-node plan text (empty delete lists skip
    planning: the node exists only for coverage accounting)."""
    if action == ACTION_SET_NULL:
        return (
            f"SET NULL {table_name}.{column} -> {SET_NULL_VALUE} "
            f"for {len(keys)} referencing key(s) (bulk UPDATE, one "
            "heap pass + per-index merge)"
        )
    if not keys:
        return "empty delete list: nothing to execute"
    table = db.table(table_name)
    if table.lsm is not None:
        from repro.lsm.planning import choose_lsm_plan

        return choose_lsm_plan(db, table_name, column, list(keys)).explain()
    return choose_plan(db, table_name, column, len(keys)).explain()


def compile_policy(
    db: Database,
    registry: ConstraintRegistry,
    policy: RetentionPolicy,
) -> RetentionPlan:
    """Compile ``policy`` into a children-first :class:`RetentionPlan`.

    Walks the FK graph depth-first from the root (constraints in
    registration order), resolving each child's referencing keys
    read-only.  RESTRICT edges with live referencing rows raise
    :class:`IntegrityViolationError` *here* — compile time, nothing
    modified.  CASCADE edges recurse (children emitted before their
    parents); SET NULL edges emit a null-out node and stop.  A table
    reached along two edges gets one merged node (key union); cycles
    are rejected.
    """
    plan = RetentionPlan(policy=policy)
    table = db.table(policy.table)
    if table.lsm is not None and policy.column != table.lsm_key_column:
        raise PlanningError(
            f"policy {policy.name}: LSM root {policy.table} must be "
            f"targeted by its key column {table.lsm_key_column!r}"
        )
    root_keys = resolve_root_keys(db, policy)
    node_of: Dict[Tuple[str, str, str], RetentionNode] = {}

    def engine_of(table_name: str) -> str:
        return ENGINE_LSM if db.table(table_name).lsm is not None else ENGINE_HEAP

    def emit(
        table_name: str,
        column: str,
        keys: Sequence[int],
        action: str,
        via: Optional[str],
    ) -> None:
        slot = (table_name, column, action)
        existing = node_of.get(slot)
        if existing is not None:
            merged = sorted(set(existing.keys) | set(keys))
            existing.keys = tuple(merged)
            if via is not None:
                existing.via = existing.via + (via,)
            return
        node = RetentionNode(
            table=table_name,
            column=column,
            keys=tuple(sorted(set(keys))),
            action=action,
            engine=engine_of(table_name),
            via=(via,) if via is not None else (),
        )
        node_of[slot] = node
        plan.nodes.append(node)

    def reach(table_name: str) -> None:
        if table_name not in plan.reachable:
            plan.reachable.append(table_name)

    def walk(
        table_name: str,
        column: str,
        keys: List[int],
        via: Optional[str],
        path: Tuple[str, ...],
    ) -> None:
        if table_name in path:
            raise PlanningError(
                f"policy {policy.name}: cascade cycle involving table "
                f"{table_name}"
            )
        reach(table_name)
        for fk in registry.referencing_table(table_name):
            # Keys of the referenced parent column among the victims:
            # for the delete column the list is the value set itself;
            # other columns would need a victim-row read, which the
            # compiler restricts to keep resolution one probe per edge.
            if fk.parent_column != column:
                raise PlanningError(
                    f"policy {policy.name}: constraint {fk.describe()} "
                    f"references {fk.parent_table}.{fk.parent_column} "
                    f"but the policy deletes by {column}; retention "
                    "cascades must follow the delete column"
                )
            referencing = find_referencing_keys(db, fk, keys)
            plan.checked.append(fk.describe())
            if fk.on_delete is OnDelete.RESTRICT:
                if referencing:
                    raise IntegrityViolationError(
                        f"policy {policy.name}: {len(referencing)} "
                        f"value(s) of {fk.child_table}.{fk.child_column} "
                        f"still reference victims ({fk.describe()})"
                    )
                if fk.child_table not in plan.restricted:
                    plan.restricted.append(fk.child_table)
                continue
            if fk.on_delete is OnDelete.SET_NULL:
                reach(fk.child_table)
                emit(
                    fk.child_table, fk.child_column, referencing,
                    ACTION_SET_NULL, fk.describe(),
                )
                continue
            walk(
                fk.child_table, fk.child_column, referencing,
                fk.describe(), path + (table_name,),
            )
        emit(table_name, column, keys, ACTION_DELETE, via)

    walk(policy.table, policy.column, root_keys, None, ())
    for node in plan.nodes:
        node.plan_explain = _node_plan_explain(
            db, node.table, node.column, node.keys, node.action
        )
    return plan

"""Crash-resumable execution of compiled retention plans.

``RecoverableRetentionRun`` executes one or more compiled
:class:`~repro.retention.policy.RetentionPlan` DAGs as a single
durable unit, journaling per-node progress through the WAL exactly the
way :class:`~repro.recovery.restart.RecoverableBulkDelete` journals
per-structure progress:

* ``retention_begin`` forces the full node list (tables, columns,
  keys, actions) plus a flushed-consistent catalog-metadata snapshot —
  from this point the run is *recoverable*; before it, a crash leaves
  the database pristine and the statement is simply re-issued,
* each node runs engine-dispatched — heap deletes as nested
  ``RecoverableBulkDelete`` statements (their own WAL bracket, redo
  records and checkpoints), LSM deletes as tombstone writes over the
  superblock-recoverable tree, SET NULL nodes as a journaled bulk
  UPDATE — and is sealed by ``retention_node_done`` carrying a fresh
  metadata snapshot,
* the **erase phase** then removes every physical trace of the victim
  rows the logical deletes left behind: heap pages are compacted (the
  slotted-page compactor zeroes stranded payload bytes), B-tree node
  slack beyond the live entry region is zeroed, LSM trees are fully
  compacted (dropping tombstones and freeing superseded runs),
  materialized spill pages and every freed-but-retained disk page are
  shredded with zero writes, and the WAL itself is redacted in place —
  logical redo records keep their kind and counts but lose the victim
  keys, and full-page images are replaced with the page's *current*
  durable image (still a valid repair source, no longer a data leak),
* ``retention_end`` closes the run.

:func:`recover_retention` is the restart path: it restores the most
recent retention metadata snapshot, delegates any open nested bulk
statement to :func:`repro.recovery.restart.recover`, re-opens every
LSM tree from its superblock, re-runs the unfinished nodes (idempotent
— re-deleting absent keys and re-nulling nulled rows are no-ops), and
re-runs the erase phase.  The terminal contract mirrors the bulk
statement's: after one successful recovery the next one must have
nothing to do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.catalog.database import Database
from repro.core.integrity import SET_NULL_VALUE
from repro.errors import RecoveryError
from repro.faults.injector import FaultInjector
from repro.media.retry import MediaRecovery
from repro.recovery.restart import RecoveryReport, recover
from repro.recovery.snapshot import capture_metadata, restore_metadata
from repro.recovery.wal import WriteAheadLog
from repro.retention.policy import (
    ACTION_DELETE,
    ACTION_SET_NULL,
    ENGINE_LSM,
    RetentionPlan,
)

#: WAL record kinds owned by the retention subsystem.
RETENTION_BEGIN = "retention_begin"
RETENTION_NODE_BEGIN = "retention_node_begin"
RETENTION_NULLOUT = "retention_nullout"
RETENTION_NODE_DONE = "retention_node_done"
RETENTION_ERASED = "retention_erased"
RETENTION_END = "retention_end"

#: WAL record kinds whose payloads carry victim keys and are redacted
#: in place by the erase phase (entries/keys replaced with counts).
_REDACTABLE_ENTRY_KINDS = ("heap_deletes", "leaf_deletes")


@dataclass
class EraseReport:
    """What the unrecoverability (erase) phase physically did."""

    heap_pages_compacted: int = 0
    heap_pages_reclaimed: int = 0
    btree_pages_scrubbed: int = 0
    lsm_compactions: int = 0
    lsm_orphan_pages_freed: int = 0
    spill_pages_shredded: int = 0
    freed_pages_shredded: int = 0
    wal_records_redacted: int = 0
    wal_images_replaced: int = 0

    @property
    def pages_shredded(self) -> int:
        return self.spill_pages_shredded + self.freed_pages_shredded


@dataclass
class RetentionRunReport:
    """What one retention run (or its recovery) accomplished."""

    run_lsn: int
    policies: List[str] = field(default_factory=list)
    nodes: int = 0
    records_deleted: int = 0
    records_nulled: int = 0
    erase: EraseReport = field(default_factory=EraseReport)


@dataclass
class RetentionRecoveryReport:
    """What :func:`recover_retention` did at restart."""

    #: ``True`` when an open retention run was found and finished.
    resumed: bool = False
    #: Nodes already sealed by ``retention_node_done`` (skipped).
    nodes_skipped: int = 0
    #: Nodes (re-)executed during recovery.
    nodes_rerun: int = 0
    #: The nested bulk-statement restart report.
    restart: Optional[RecoveryReport] = None
    run: Optional[RetentionRunReport] = None


def _serialize_nodes(plans: Sequence[RetentionPlan]) -> List[Dict[str, Any]]:
    nodes: List[Dict[str, Any]] = []
    for plan in plans:
        for node in plan.nodes:
            nodes.append({
                "policy": plan.policy.name,
                "table": node.table,
                "column": node.column,
                "keys": list(node.keys),
                "action": node.action,
                "engine": node.engine,
            })
    return nodes


class RecoverableRetentionRun:
    """Run compiled retention plans as one crash-resumable unit.

    ``faults``/``full_page_writes``/``media`` arm exactly like the
    bulk statement's: the injector and the page-image sink stay armed
    across every node *and* the erase phase, so the crash sweep can
    strike any durable event of the whole policy run.  Nested bulk
    statements run with ``faults=None`` — their stage hooks stay
    silent, while durable-event crashes still fire through the armed
    disk and WAL.
    """

    def __init__(
        self,
        db: Database,
        plans: Sequence[RetentionPlan],
        log: WriteAheadLog,
        faults: Optional[FaultInjector] = None,
        full_page_writes: bool = False,
        media: Optional[MediaRecovery] = None,
    ) -> None:
        if not plans:
            raise RecoveryError("retention run needs at least one plan")
        self.db = db
        self.plans = list(plans)
        self.log = log
        self.faults = faults
        self.full_page_writes = full_page_writes
        self.media = media

    # ------------------------------------------------------------------
    def run(self) -> RetentionRunReport:
        """Execute every node and the erase phase to completion (or to
        the injected crash)."""
        db = self.db
        if self.faults is not None:
            self.faults.arm(db.disk, pool=db.pool, log=self.log)
        if self.full_page_writes:
            db.pool.page_image_sink = self._log_page_image
        if self.media is not None:
            db.pool.media = self.media
        try:
            return self._run()
        finally:
            if self.media is not None:
                db.pool.media = None
            if self.full_page_writes:
                db.pool.page_image_sink = None
            if self.faults is not None:
                self.faults.disarm()

    def _log_page_image(self, page_id: int, image: bytes) -> None:
        self.log.append("page_image", page_id=page_id, image=image)

    def _run(self) -> RetentionRunReport:
        db = self.db
        nodes = _serialize_nodes(self.plans)
        db.flush()
        run_lsn = self.log.append(
            RETENTION_BEGIN,
            policies=[plan.policy.name for plan in self.plans],
            nodes=nodes,
            metadata=capture_metadata(db),
        )
        report = RetentionRunReport(
            run_lsn=run_lsn,
            policies=[plan.policy.name for plan in self.plans],
            nodes=len(nodes),
        )
        obs = db.obs
        if obs is not None:
            obs.on_retention_run(len(self.plans), len(nodes))  # type: ignore[attr-defined]
        for position, node in enumerate(nodes):
            records = execute_node(db, self.log, run_lsn, position, node)
            if node["action"] == ACTION_SET_NULL:
                report.records_nulled += records
            else:
                report.records_deleted += records
        report.erase = erase_traces(db, self.log, run_lsn, nodes)
        self.log.append(RETENTION_END, run_lsn=run_lsn)
        return report


def execute_node(
    db: Database,
    log: WriteAheadLog,
    run_lsn: int,
    position: int,
    node: Dict[str, Any],
) -> int:
    """Execute one DAG node and seal it with ``retention_node_done``.

    Engine-dispatched; idempotent by construction, so recovery re-runs
    an unsealed node verbatim.  Returns the records touched.
    """
    log.append(RETENTION_NODE_BEGIN, run_lsn=run_lsn, node=position)
    keys = list(node["keys"])
    records = 0
    if not keys:
        pass  # coverage-only node: nothing to execute
    elif node["action"] == ACTION_SET_NULL:
        records = _run_set_null_node(db, log, run_lsn, position, node)
    elif node["engine"] == ENGINE_LSM:
        from repro.lsm.engine import lsm_bulk_delete

        result = lsm_bulk_delete(
            db, node["table"], node["column"], keys
        )
        records = result.records_deleted
    else:
        from repro.recovery.restart import RecoverableBulkDelete

        records = RecoverableBulkDelete(
            db, node["table"], node["column"], keys, log
        ).run()
    db.flush()
    log.append(
        RETENTION_NODE_DONE,
        run_lsn=run_lsn,
        node=position,
        records=records,
        metadata=capture_metadata(db),
    )
    obs = db.obs
    if obs is not None:
        obs.on_retention_node(node["action"], records)  # type: ignore[attr-defined]
    return records


def _run_set_null_node(
    db: Database,
    log: WriteAheadLog,
    run_lsn: int,
    position: int,
    node: Dict[str, Any],
) -> int:
    """Null-out ``node.column`` for every row whose value is in the
    node's keys, journaled by a ``retention_nullout`` record.

    The record is forced *before* any page effect (the WAL rule), so a
    crash mid-update re-runs the statement: rows already durably
    nulled no longer match the key list and are left alone.
    """
    from repro.core.bulk_update import bulk_update

    log.append(
        RETENTION_NULLOUT,
        run_lsn=run_lsn,
        node=position,
        table=node["table"],
        column=node["column"],
        keys=list(node["keys"]),
    )
    result = bulk_update(
        db,
        node["table"],
        node["column"],
        lambda values: SET_NULL_VALUE,
        where_column=node["column"],
        where_keys=list(node["keys"]),
    )
    return result.records_updated


def _reconcile_table_indexes(db: Database, table_name: str) -> None:
    """Rebuild every B-tree index of ``table_name`` from its heap.

    A crash inside a SET NULL node can leave heap pages and index
    pages split across the flush boundary; the re-run fixes the heap
    (idempotent by key-list) but cannot know which index edits were
    already durable.  One deterministic bottom-up rebuild restores
    exact index state.
    """
    table = db.table(table_name)
    for ix in table.indexes.values():
        if not ix.is_btree:
            continue
        entries = sorted(
            (ix.key_for(values, table.schema), rid.pack())
            for rid, payload in table.heap.scan()
            for values in (table.serializer.unpack(payload),)
        )
        ix.tree.bulk_load(entries)  # type: ignore[union-attr]


# ----------------------------------------------------------------------
# erase phase
# ----------------------------------------------------------------------
def erase_traces(
    db: Database,
    log: WriteAheadLog,
    run_lsn: int,
    nodes: Sequence[Dict[str, Any]],
) -> EraseReport:
    """Physically remove every trace the logical deletes left behind.

    Idempotent: every step re-applied over an already-erased database
    is a no-op (compacting a compacted page, re-zeroing zeros,
    re-redacting redacted records), which is what lets recovery simply
    re-run the whole phase after a mid-erase crash.
    """
    report = EraseReport()
    zeros = bytes(db.disk.page_size)
    heap_tables: List[str] = []
    lsm_tables: List[str] = []
    for node in nodes:
        if node["action"] != ACTION_DELETE:
            continue
        bucket = lsm_tables if node["engine"] == ENGINE_LSM else heap_tables
        if node["table"] not in bucket:
            bucket.append(node["table"])

    # 1. LSM: full compaction converges each tree to one tombstone-free
    #    level; superseded runs, log and manifest pages are freed (and
    #    shredded below).  Run responsibility bounds are then tightened
    #    to the resident keys — a covering ``key_max`` that *is* an
    #    erased key would otherwise leak it through the manifest.  Safe
    #    after full compaction: with zero tombstones left, nothing
    #    needs the wider masking span.
    import dataclasses

    from repro.lsm.sstable import run_iter

    for table_name in lsm_tables:
        table = db.table(table_name)
        assert table.lsm is not None
        lsm = table.lsm
        lsm.observer = db.obs
        report.lsm_compactions += lsm.compact_all()
        tightened = False
        for runs in lsm.levels:
            for i, meta in enumerate(runs):
                resident = [k for k, _, _ in run_iter(db.pool, meta)]
                if resident and (
                    meta.key_min != resident[0]
                    or meta.key_max != resident[-1]
                ):
                    runs[i] = dataclasses.replace(
                        meta, key_min=resident[0], key_max=resident[-1]
                    )
                    tightened = True
        if tightened:
            lsm._commit()
        # Reclaim orphaned pages of the tree's files: a crash between
        # a superblock flip and the free of the pages it superseded
        # (old log chain, replaced runs/manifests) leaks them as live
        # pages no committed state references — still holding victim
        # bytes.  Freed here, they are shredded with the rest below.
        reachable = set(lsm._sb_ids)
        reachable.update(lsm._manifest_pages)
        reachable.update(lsm._log_pages)
        if lsm._log_tail_next:
            reachable.add(lsm._log_tail_next)
        for runs in lsm.levels:
            for meta in runs:
                reachable.update(meta.page_ids)
        files = {lsm.data_file, lsm.log_file, lsm.meta_file}
        for page_id in db.disk.page_ids():
            if (
                db.disk.file_of(page_id) in files
                and page_id not in reachable
            ):
                db.disk.free_page(page_id)
                report.lsm_orphan_pages_freed += 1

    # 2. Heap: compact every page (the compactor zeroes stranded
    #    payload bytes of deleted records), then free fully empty pages.
    from repro.storage.page_formats import SlottedPage

    for table_name in heap_tables:
        heap = db.table(table_name).heap
        for page_id in list(heap.page_ids):
            with db.pool.pin(page_id) as pinned:
                page = SlottedPage(pinned.data)
                page.compact()
                pinned.mark_dirty()
                heap.fsm.record(page_id, page.potential_free_space())
            report.heap_pages_compacted += 1
        report.heap_pages_reclaimed += heap.reclaim_empty_pages()

    # 3. B-trees: zero node slack beyond the live entry region — a
    #    leaf edit rewrites header + entries and leaves the old tail
    #    bytes (deleted keys and RIDs) in place past the entry count.
    from repro.btree.node import ENTRY_SIZE, HEADER_SIZE, Node

    for table_name in heap_tables:
        table = db.table(table_name)
        for ix in table.indexes.values():
            if not ix.is_btree:
                continue
            for page_id in ix.tree._collect_pages():  # type: ignore[union-attr]
                with db.pool.pin(page_id) as pinned:
                    node_view = Node.unpack_from(page_id, pinned.data)
                    live_end = HEADER_SIZE + ENTRY_SIZE * node_view.entry_count
                    if any(pinned.data[live_end:]):
                        pinned.data[live_end:] = bytes(
                            len(pinned.data) - live_end
                        )
                        pinned.mark_dirty()
                        report.btree_pages_scrubbed += 1

    db.flush()

    # 4. Shred the materialized spill pages of every *closed* bulk
    #    statement: sorted victim keys and RID lists live there.  Page
    #    ids are never reused, so stale ids cannot alias live data.
    #    Shredding writes the raw device on purpose: spill and freed
    #    pages are not pool-resident, and the overwrite must reach the
    #    platter even if a cached frame existed — hence the pragmas.
    shredded: set = set()
    open_rec = log.find_open_bulk_delete()
    for record in log.records("materialized"):
        if open_rec is not None and record.payload["begin_lsn"] == open_rec.lsn:
            continue
        for page_id in record.payload["page_ids"]:
            if page_id not in shredded:
                db.disk.write_page(page_id, zeros)  # lint: allow(raw-page-io)
                shredded.add(page_id)
                report.spill_pages_shredded += 1

    # 5. Shred every freed-but-retained page: old heap pages, freed
    #    B-tree nodes, superseded LSM runs/logs/manifests — anything
    #    whose stale bytes a forensic read could still recover.
    for page_id in db.disk.freed_page_ids():
        if page_id in shredded:
            continue
        db.disk.write_page(page_id, zeros)  # lint: allow(raw-page-io)
        report.freed_pages_shredded += 1

    # 6. Redact the WAL in place: logical redo records keep their kind
    #    and cardinality (recovery of *closed* statements never replays
    #    them) but lose the victim keys; full-page images are replaced
    #    with the page's current durable image — still a valid repair
    #    source for a future torn write, no longer a record of the
    #    erased bytes.
    for record in log.records():
        payload = record.payload
        if record.kind in _REDACTABLE_ENTRY_KINDS and payload.get("entries"):
            payload["redacted_entries"] = len(payload["entries"])
            payload["entries"] = []
            report.wal_records_redacted += 1
        elif record.kind == RETENTION_BEGIN:
            for node_payload in payload.get("nodes", []):
                if node_payload.get("keys"):
                    node_payload["redacted_keys"] = len(node_payload["keys"])
                    node_payload["keys"] = []
                    report.wal_records_redacted += 1
        elif record.kind == RETENTION_NULLOUT and payload.get("keys"):
            payload["redacted_keys"] = len(payload["keys"])
            payload["keys"] = []
            report.wal_records_redacted += 1
        elif record.kind == "page_image":
            page_id = payload["page_id"]
            if (
                page_id in db.disk._freed_ids
                and not db.disk.retain_freed
            ):
                image = zeros
            else:
                image = db.disk.durable_image(page_id)
            if payload["image"] != image:
                payload["image"] = image
                report.wal_images_replaced += 1

    log.append(
        RETENTION_ERASED,
        run_lsn=run_lsn,
        pages_shredded=report.pages_shredded,
        wal_records_redacted=report.wal_records_redacted,
        metadata=capture_metadata(db),
    )
    obs = db.obs
    if obs is not None:
        obs.on_retention_erase(  # type: ignore[attr-defined]
            report.pages_shredded, report.wal_records_redacted
        )
    return report


# ----------------------------------------------------------------------
# restart
# ----------------------------------------------------------------------
def find_open_retention_run(log: WriteAheadLog):
    """The last ``retention_begin`` without a matching ``retention_end``."""
    open_rec = None
    for record in log.records():
        if record.kind == RETENTION_BEGIN:
            open_rec = record
        elif record.kind == RETENTION_END:
            if open_rec is not None and record.payload.get("run_lsn") == open_rec.lsn:
                open_rec = None
    return open_rec


def recover_retention(
    db: Database,
    log: WriteAheadLog,
    faults: Optional[FaultInjector] = None,
    full_page_writes: bool = False,
) -> RetentionRecoveryReport:
    """Restart processing for retention runs: finish forward.

    Always settles the WAL tail and torn pages (via
    :func:`repro.recovery.restart.recover`) even when no retention run
    is open — a crash before ``retention_begin`` leaves the database
    pristine and the caller re-issues the run from scratch.
    """
    report = RetentionRecoveryReport()
    open_rec = find_open_retention_run(log)
    if open_rec is None:
        report.restart = recover(
            db, log, faults=faults, full_page_writes=full_page_writes
        )
        return report

    report.resumed = True
    run_lsn = open_rec.lsn
    nodes: List[Dict[str, Any]] = open_rec.payload["nodes"]

    # 1. Restore the newest durable metadata snapshot.  Candidates are
    #    every metadata-bearing record: the retention run's own
    #    (``retention_begin``/``retention_node_done``/
    #    ``retention_erased``) *and* the nested bulk statements'
    #    ``checkpoint`` records — a crash between a statement's
    #    ``bulk_end`` and its node's seal leaves the statement closed
    #    (so restart below will not restore its checkpoint) while the
    #    last retention snapshot predates the whole node.  Every
    #    snapshot follows a flush, so the newest one is consistent with
    #    the durable pages.  If a nested statement is still *open*,
    #    restart re-restores its latest checkpoint anyway.
    snapshot = open_rec.payload["metadata"]
    snapshot_lsn = run_lsn
    for record in log.records():
        metadata = record.payload.get("metadata")
        if metadata is not None and record.lsn > snapshot_lsn:
            snapshot = metadata
            snapshot_lsn = record.lsn
    restore_metadata(db, snapshot)

    # 2. Let restart finish (or abandon) any open nested bulk
    #    statement; this also truncates a torn WAL tail and repairs
    #    torn page write-backs from full-page images.
    report.restart = recover(
        db, log, faults=faults, full_page_writes=full_page_writes
    )

    # 3. Re-open every LSM tree of the plan from its durable
    #    superblock: the in-memory run lists died with the crash.
    _reopen_lsm_tables(db, nodes)

    # 4. Re-run every unsealed node, in order (idempotent).
    done = {
        record.payload["node"]
        for record in log.records(RETENTION_NODE_DONE)
        if record.payload.get("run_lsn") == run_lsn
    }
    report.nodes_skipped = len(done)
    for position, node in enumerate(nodes):
        if position in done:
            continue
        # The begin record's key lists may already be redacted when the
        # crash struck inside the erase phase — by then every node was
        # sealed, so an unsealed node always has its keys.
        if node["action"] == ACTION_SET_NULL and node["keys"]:
            execute_node(db, log, run_lsn, position, node)
            _reconcile_table_indexes(db, node["table"])
            db.flush()
        else:
            execute_node(db, log, run_lsn, position, node)
        report.nodes_rerun += 1

    # 5. Re-run the erase phase end to end and close the run.
    run_report = RetentionRunReport(
        run_lsn=run_lsn,
        policies=list(open_rec.payload["policies"]),
        nodes=len(nodes),
    )
    run_report.erase = erase_traces(db, log, run_lsn, nodes)
    log.append(RETENTION_END, run_lsn=run_lsn)
    report.run = run_report
    obs = db.obs
    if obs is not None:
        obs.on_retention_resume(report.nodes_skipped)  # type: ignore[attr-defined]
    return report


def _reopen_lsm_tables(db: Database, nodes: Sequence[Dict[str, Any]]) -> None:
    from repro.lsm.tree import LsmTree

    seen: set = set()
    for node in nodes:
        if node["engine"] != ENGINE_LSM or node["table"] in seen:
            continue
        seen.add(node["table"])
        table = db.table(node["table"])
        assert table.lsm is not None
        table.lsm = LsmTree.recover(
            db.pool,
            table.lsm.handle,
            config=table.lsm.config,
            name=table.lsm.name,
        )
        table.lsm.observer = db.obs

"""Recoverable bulk deletes: checkpoints, crash simulation, roll-forward.

Implements §3.2 of the paper: "To take full advantage of checkpointing
and to save the work done even after a system failure we propose to
*finish* the bulk deletion instead of rolling it back."

``RecoverableBulkDelete`` runs the vertical plan one structure at a
time, with:

* every intermediate result (sorted keys, RID list, per-index key/RID
  projections) *materialized to stable storage* and registered in the
  log — the paper says exactly this about "the results of the join
  variants",
* a logical redo record forced to the log *before* each page
  modification (classic WAL), so partially flushed stages can be
  re-derived,
* a checkpoint (flush everything + catalog-metadata snapshot) after
  each structure, bracketed by ``structure_done``.

``recover`` scans the log for an unfinished bulk delete, restores the
last checkpoint, and re-runs only the unfinished stages — re-deleting
an already-deleted entry is a no-op, so redo is idempotent.  Side-files
captured by concurrent updaters are applied after the bulk delete has
finished, as §3.2 requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.catalog.database import Database
from repro.core.bulk_ops import bd_heap_sorted_rids, bd_index_sort_merge
from repro.errors import RecoveryError, ReproError, RetriesExhausted
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, SimulatedCrash
from repro.media.retry import MediaRecovery, wal_image_source
from repro.media.scrub import scrub_database
from repro.parallel import DEDICATED, LaneScheduler, LaneTask
from repro.query.spill import SpillFile
from repro.recovery.snapshot import capture_metadata, restore_metadata
from repro.recovery.wal import WriteAheadLog
from repro.storage.rid import RID
from repro.txn.sidefile import SideFile

Entry = Tuple[int, int]

__all__ = [
    "RecoverableBulkDelete",
    "RecoveryReport",
    "SimulatedCrash",
    "UserWrite",
    "apply_user_write",
    "recover",
    "replay_user_writes",
]


@dataclass(frozen=True)
class UserWrite:
    """One concurrent user write interleaved with a bulk delete.

    ``op`` is ``"insert"`` or ``"delete"``; ``values`` is the complete
    row either way, so a WAL record of the write carries everything
    replay needs to recompute every index key.  The crash sweep's
    traffic schedules guarantee each indexed column value identifies at
    most one logical row, which is what makes replay-by-values exact.
    """

    op: str
    values: Tuple[object, ...]


@dataclass
class RecoveryReport:
    """What restart did."""

    resumed: bool = False
    abandoned: bool = False
    skipped_structures: List[str] = field(default_factory=list)
    redone_structures: List[str] = field(default_factory=list)
    records_deleted: int = 0
    #: ``user_op`` records whose effects were verified/re-applied.
    user_writes_replayed: int = 0
    side_files_applied: Dict[str, int] = field(default_factory=dict)
    torn_pages_repaired: int = 0
    wal_tail_truncated: bool = False
    #: :class:`repro.media.ScrubReport` when ``recover(scrub=True)``.
    scrub_report: Optional[object] = None


class RecoverableBulkDelete:
    """A bulk delete that survives crashes at (and between) any stage.

    ``crash_point`` names one of the stage boundaries
    (``after_begin``, ``after_driving``, ``after_table``,
    ``after_index:<name>``, ``before_end``); ``crash_mid_structure``
    is ``(structure_name, nth_redo_record)`` for a crash in the middle
    of a sweep.  Either one loses the buffer pool, exactly like a power
    failure.  Arbitrary fault plans (crash after the k-th durable
    event, torn writes, dropped WAL tails) come in through ``faults``;
    the legacy keyword arguments are sugar that builds an injector for
    the equivalent plan.

    ``full_page_writes`` logs a ``page_image`` record the first time a
    clean page is dirtied, so recovery can repair torn page writes.

    ``media`` attaches a :class:`repro.media.MediaRecovery` to the
    buffer pool for the statement's duration, so pool misses survive
    transient read faults (retry + backoff) and latent corruption
    (repair from a full-page image) instead of failing the statement.

    ``lanes > 1`` runs the post-table index stages on concurrent
    simulated I/O lanes.  The scheduler's interleaving is a pure
    function of ``(stages, lanes, contention, lane_seed)``, so a crash
    point that names a durable event always lands on the same event —
    the sweep stays replayable.  Recovery itself is always serial
    (redo is idempotent; there is nothing to win by racing it).
    """

    def __init__(
        self,
        db: Database,
        table_name: str,
        column: str,
        keys: Sequence[int],
        log: WriteAheadLog,
        crash_point: Optional[str] = None,
        crash_mid_structure: Optional[Tuple[str, int]] = None,
        faults: Optional[FaultInjector] = None,
        full_page_writes: bool = False,
        lanes: int = 1,
        contention: str = DEDICATED,
        lane_seed: int = 0,
        media: Optional[MediaRecovery] = None,
        traffic: Optional[Dict[str, Sequence["UserWrite"]]] = None,
    ) -> None:
        self.db = db
        self.table_name = table_name
        self.column = column
        self.keys = list(keys)
        self.log = log
        if traffic and lanes != 1:
            raise RecoveryError(
                "concurrent user traffic requires lanes=1 (boundary "
                "application inside lane tasks would interleave "
                "non-deterministically with the schedule)"
            )
        self.traffic = traffic or {}
        if faults is None and (crash_point or crash_mid_structure):
            faults = FaultInjector(FaultPlan(
                crash_point=crash_point,
                crash_mid_structure=crash_mid_structure,
            ))
        self.faults = faults
        self.full_page_writes = full_page_writes
        self.lanes = lanes
        self.contention = contention
        self.lane_seed = lane_seed
        self.media = media

    # ------------------------------------------------------------------
    def run(self) -> int:
        """Execute to completion (or to the injected crash)."""
        db = self.db
        if self.faults is not None:
            self.faults.arm(db.disk, pool=db.pool, log=self.log)
        if self.full_page_writes:
            db.pool.page_image_sink = self._log_page_image
        if self.media is not None:
            db.pool.media = self.media
        try:
            return self._run()
        finally:
            if self.media is not None:
                db.pool.media = None
            if self.full_page_writes:
                db.pool.page_image_sink = None
            if self.faults is not None:
                self.faults.disarm()

    def _run(self) -> int:
        db = self.db
        table = db.table(self.table_name)
        driving = table.indexes_on(self.column)
        if not driving:
            raise RecoveryError(
                f"recoverable bulk delete needs an index on {self.column}"
            )
        if table.hash_indexes():
            raise RecoveryError(
                "recoverable bulk deletes cover B-tree indexes only"
            )
        driving_name = driving[0].name
        others = [
            ix.name
            for ix in table.indexes.values()
            if ix.name != driving_name
        ]
        stages = (
            [{"kind": "index", "name": driving_name, "role": "driving"}]
            + [{"kind": "table"}]
            + [{"kind": "index", "name": name} for name in others]
        )
        begin_lsn = self.log.append(
            "bulk_begin",
            table=self.table_name,
            column=self.column,
            stages=stages,
            index_order=others,
        )
        sorted_keys = sorted(self.keys)
        self._materialize(
            "keys", 1, [(k,) for k in sorted_keys], begin_lsn
        )
        # Initial checkpoint: restart must be able to restore the
        # catalog metadata as of the statement's start even when the
        # crash hits before the first structure completes.
        self._checkpoint(begin_lsn, "__initial__")
        self._maybe_crash("after_begin")
        self._apply_traffic("after_begin")

        rid_list = self._run_driving(begin_lsn, driving_name, sorted_keys)
        self._checkpoint(begin_lsn, driving_name)
        self._maybe_crash("after_driving")
        self._apply_traffic("after_driving")

        deleted = self._run_table(begin_lsn, others, rid_list)
        self._checkpoint(begin_lsn, "__table__")
        self._maybe_crash("after_table")
        self._apply_traffic("after_table")

        if self.lanes == 1:
            for name in others:
                self._run_index(begin_lsn, name)
                self._checkpoint(begin_lsn, name)
                self._maybe_crash(f"after_index:{name}")
                self._apply_traffic(f"after_index:{name}")
        elif others:
            # Each lane task carries its own checkpoint and crash
            # point, so the durable-event order matches the (fixed,
            # seeded) execution order and the sweep stays replayable.
            scheduler = LaneScheduler(
                db.disk, self.lanes, self.contention, seed=self.lane_seed
            )
            scheduler.run_region(
                "index-maintenance",
                [
                    LaneTask(
                        name=f"bd[sort-merge/rid] {name}",
                        run=self._make_index_stage(begin_lsn, name),
                        target=name,
                    )
                    for name in others
                ],
                obs=db.obs,
            )

        self._maybe_crash("before_end")
        self._apply_traffic("before_end")
        self.log.append("bulk_end", begin_lsn=begin_lsn)
        return deleted

    def _apply_traffic(self, point: str) -> None:
        """Apply the user writes scheduled at this stage boundary.

        Each write's ``user_op`` WAL record is its commit point —
        forced before any page effect, so a crash anywhere after the
        append cannot lose the write (replay re-derives the effects
        from the record), and a crash before it means the write never
        committed (the client re-submits).  One flush per boundary
        makes the batch durable the cheap way.
        """
        ops = self.traffic.get(point, ())
        if not ops:
            return
        for op in ops:
            apply_user_write(self.db, self.log, self.table_name, op)
        self.db.flush()

    # ------------------------------------------------------------------
    # stages
    # ------------------------------------------------------------------
    def _run_driving(
        self, begin_lsn: int, driving_name: str, sorted_keys: List[int]
    ) -> List[int]:
        table = self.db.table(self.table_name)
        tree = table.index(driving_name).tree
        bd = bd_index_sort_merge(
            tree,
            [(k, 0) for k in sorted_keys],
            self.db.disk,
            match_rid=False,
            on_removed=self._redo_logger(driving_name),
        )
        rid_list = sorted(rid for _, rid in bd.deleted)
        self._materialize("rids", 1, [(r,) for r in rid_list], begin_lsn)
        return rid_list

    def _run_table(
        self, begin_lsn: int, index_order: List[str], rid_list: List[int]
    ) -> int:
        db = self.db
        table = db.table(self.table_name)
        indexes = [table.index(name) for name in index_order]
        width = 1 + len(indexes)

        def log_page(batch: List[Tuple[RID, bytes]]) -> None:
            entries = []
            for rid, payload in batch:
                values = table.serializer.unpack(payload)
                keys = [ix.key_for(values, table.schema) for ix in indexes]
                entries.append((rid.pack(), *keys))
            self.log.append(
                "heap_deletes", structure="__table__", entries=entries
            )
            self._maybe_crash_mid("__table__")

        rows = table.heap.delete_many_sorted(
            [RID.unpack(r) for r in rid_list], on_page_deletes=log_page
        )
        db.disk.charge_cpu_records(len(rows))
        # Project and materialize the per-index (key, RID) pairs.
        decoded = [
            (rid, table.serializer.unpack(payload)) for rid, payload in rows
        ]
        for ix in indexes:
            pairs = sorted(
                (ix.key_for(values, table.schema), rid.pack())
                for rid, values in decoded
            )
            self._materialize(f"pairs:{ix.name}", 2, pairs, begin_lsn)
        return len(rows)

    def _make_index_stage(self, begin_lsn: int, name: str):
        def stage() -> None:
            self._run_index(begin_lsn, name)
            self._checkpoint(begin_lsn, name)
            self._maybe_crash(f"after_index:{name}")

        return stage

    def _run_index(self, begin_lsn: int, name: str) -> None:
        table = self.db.table(self.table_name)
        tree = table.index(name).tree
        pairs = self._load_materialized(f"pairs:{name}", begin_lsn)
        bd_index_sort_merge(
            tree,
            [(k, r) for k, r in pairs],
            self.db.disk,
            match_rid=True,
            on_removed=self._redo_logger(name),
        )

    # ------------------------------------------------------------------
    # logging / checkpointing / crashing
    # ------------------------------------------------------------------
    def _redo_logger(self, structure: str):
        def _log(removed: List[Entry]) -> None:
            self.log.append(
                "leaf_deletes", structure=structure, entries=list(removed)
            )
            self._maybe_crash_mid(structure)

        return _log

    def _materialize(
        self, name: str, width: int, items: Sequence[Tuple[int, ...]], begin_lsn: int
    ) -> None:
        spill = SpillFile(self.db.disk, width)
        spill.extend(items)
        spill.seal()
        self.log.append(
            "materialized",
            begin_lsn=begin_lsn,
            name=name,
            width=width,
            page_ids=list(spill.page_ids),
            count=spill.tuple_count,
        )

    def _load_materialized(
        self, name: str, begin_lsn: int
    ) -> List[Tuple[int, ...]]:
        for record in self.log.records("materialized"):
            if (
                record.payload["begin_lsn"] == begin_lsn
                and record.payload["name"] == name
            ):
                spill = SpillFile.from_pages(
                    self.db.disk,
                    record.payload["width"],
                    record.payload["page_ids"],
                    record.payload["count"],
                )
                return list(spill)
        raise RecoveryError(f"materialized list {name} not found in log")

    def _checkpoint(self, begin_lsn: int, structure: str) -> None:
        self.db.flush()
        self.log.append(
            "structure_done", begin_lsn=begin_lsn, structure=structure
        )
        self.log.append(
            "checkpoint",
            begin_lsn=begin_lsn,
            metadata=capture_metadata(self.db),
        )

    def _maybe_crash(self, point: str) -> None:
        if self.faults is not None:
            self.faults.stage(point)

    def _maybe_crash_mid(self, structure: str) -> None:
        if self.faults is not None:
            self.faults.redo_record(structure)

    def _log_page_image(self, page_id: int, image: bytes) -> None:
        self.log.append("page_image", page_id=page_id, image=image)


def apply_user_write(
    db: Database, log: WriteAheadLog, table_name: str, write: UserWrite
) -> None:
    """Commit one user write: force its WAL record, then apply.

    The record carries the full row, so :func:`replay_user_writes` can
    re-derive every heap and index effect without reading anything that
    might have been lost with the buffer pool.  Inserts go through the
    normal online path; deletes locate their row through the first
    index whose key matches (falling back to a heap scan) and use the
    ordinary record-level delete.
    """
    table = db.table(table_name)
    values = tuple(write.values)
    log.append(
        "user_op", table=table_name, op=write.op, values=list(values)
    )
    if write.op == "insert":
        db.insert(table_name, values)
    elif write.op == "delete":
        for rid, row in db.scan(table_name):
            if row == values:
                db.delete_record(table_name, rid)
                break
        else:
            raise RecoveryError(
                f"user delete of absent row {values[:2]}... in {table_name}"
            )
    else:
        raise RecoveryError(f"unknown user write op {write.op!r}")


def replay_user_writes(db: Database, log: WriteAheadLog) -> int:
    """Re-establish the effect of every committed user write.

    A ``user_op`` record in the log means the write committed; its page
    effects may or may not have reached disk (heap and index pages
    flush independently, and a crash can split them).  Replay is an
    idempotent *ensure*, in record order: an insert's row must exist
    with exactly one entry per index; a delete's row must be gone from
    the heap and from every index.  Stale entries — a key whose RID no
    longer holds a row producing that key — are removed; this is exact
    because the traffic schedules keep indexed column values unique per
    logical row.  Counts are recounted afterwards (replay cannot know
    which effects were already durable) and everything is flushed.

    Returns the number of records processed (0 leaves the database
    completely untouched — the non-traffic fast path).
    """
    records = list(log.records("user_op"))
    if not records:
        return 0
    touched: Set[str] = set()
    for record in records:
        table_name = record.payload["table"]
        table = db.table(table_name)
        values = tuple(record.payload["values"])
        touched.add(table_name)
        live = [
            rid for rid, row in db.scan(table_name) if row == values
        ]
        if record.payload["op"] == "insert":
            if live:
                rid = live[0]
            else:
                rid = table.heap.insert(table.serializer.pack(values))
            _ensure_index_entries(table, values, rid)
        else:
            for victim in live:
                table.heap.delete(victim, cold=True)
            _drop_stale_entries(table, values)
    for table_name in sorted(touched):
        table = db.table(table_name)
        table.heap._record_count = sum(1 for _ in table.heap.scan())
        for ix in table.indexes.values():
            if ix.is_btree:
                _reconcile_entry_count(ix.tree)
    db.flush()
    return len(records)


def _ensure_index_entries(table, values: Tuple[object, ...], rid) -> None:
    """Exactly one entry per index maps this row's keys to ``rid``."""
    packed = rid.pack()
    for ix in table.indexes.values():
        if not ix.is_btree:
            continue
        key = ix.key_for(values, table.schema)
        _drop_mismatched(table, ix, key, keep=packed)
        if packed not in ix.tree.search(key):
            ix.tree.insert(key, packed)


def _drop_stale_entries(table, values: Tuple[object, ...]) -> None:
    """No index may keep an entry for this (deleted) row's keys."""
    for ix in table.indexes.values():
        if not ix.is_btree:
            continue
        key = ix.key_for(values, table.schema)
        _drop_mismatched(table, ix, key, keep=None)


def _drop_mismatched(table, ix, key: int, keep: Optional[int]) -> None:
    """Drop entries under ``key`` whose RID does not hold a live row
    producing ``key`` (except ``keep``, the entry being ensured)."""
    for packed in list(ix.tree.search(key)):
        if packed == keep:
            continue
        rid = RID.unpack(packed)
        if not table.heap.exists(rid):
            ix.tree.delete(key, packed)
            continue
        row = table.serializer.unpack(table.heap.read(rid))
        if ix.key_for(row, table.schema) != key:
            ix.tree.delete(key, packed)


def recover(
    db: Database,
    log: WriteAheadLog,
    side_files: Optional[Dict[str, SideFile]] = None,
    faults: Optional[FaultInjector] = None,
    full_page_writes: bool = False,
    scrub: bool = False,
) -> RecoveryReport:
    """Restart processing: finish any interrupted bulk delete forward.

    ``faults`` injects crashes *into recovery itself* (the re-entrancy
    half of the crash sweep); ``full_page_writes`` keeps logging page
    images during recovery so a second torn write is repairable too.
    ``scrub`` runs a full :func:`repro.media.scrub_database` pass after
    recovery completes (checksum sweep + structural reconciliation),
    attaching the report to the result.
    """
    report = RecoveryReport()
    # Restart's checksum scan: a torn final record is truncated, pages
    # whose durable bytes fail verification (torn write-backs) are
    # repaired from their logged full-page images.
    report.wal_tail_truncated = log.truncate_torn_tail() is not None
    report.torn_pages_repaired = _repair_torn_pages(db, log)
    open_rec = log.find_open_bulk_delete()
    if open_rec is not None:
        report.resumed = True
        if faults is not None:
            faults.arm(db.disk, pool=db.pool, log=log)
        if full_page_writes:
            db.pool.page_image_sink = (
                lambda page_id, image: log.append(
                    "page_image", page_id=page_id, image=image
                )
            )
        try:
            _resume(db, log, open_rec, side_files, faults, report)
        finally:
            if full_page_writes:
                db.pool.page_image_sink = None
            if faults is not None:
                faults.disarm()
    # Committed user writes are re-established even when no statement
    # is open: a write's WAL record can outlive unflushed page effects
    # regardless of how the statement itself ended.
    report.user_writes_replayed = replay_user_writes(db, log)
    if scrub:
        media = MediaRecovery(
            db.disk, image_sources=[("wal", wal_image_source(log))]
        )
        report.scrub_report = scrub_database(db, media=media)
    return report


def _repair_torn_pages(db: Database, log: WriteAheadLog) -> int:
    """Repair pages whose durable bytes fail their checksum.

    A torn write-back is the classic cause: half the new image, half
    the old, under a checksum stamped for the intended image.  The
    disk's verification sweep (``corrupt_page_ids``) finds every such
    page; each is rewritten from its most recent logged full-page
    image, after which logical redo rolls it forward.  A failing page
    *without* an image is left alone: it can only be a page no durable
    structure references yet (e.g. a node the interrupted stage had
    freshly allocated — the stage re-run allocates new pages and never
    revisits it).
    """
    disk = db.disk
    corrupt = disk.corrupt_page_ids()
    if not corrupt:
        return 0
    media = MediaRecovery(
        disk, image_sources=[("wal", wal_image_source(log))]
    )
    repaired = 0
    for page_id in corrupt:
        try:
            media.read(page_id)
        except RetriesExhausted:
            continue
        repaired += 1
    return repaired


def _resume(
    db: Database,
    log: WriteAheadLog,
    open_rec,
    side_files: Optional[Dict[str, SideFile]],
    faults: Optional[FaultInjector],
    report: RecoveryReport,
) -> RecoveryReport:
    begin_lsn = open_rec.lsn
    table_name = open_rec.payload["table"]
    index_order: List[str] = open_rec.payload["index_order"]
    stages = open_rec.payload["stages"]
    table = db.table(table_name)

    # Restore the most recent checkpoint's metadata (if any).
    checkpoint = None
    for record in log.records_after(begin_lsn):
        if record.kind == "checkpoint" and record.payload["begin_lsn"] == begin_lsn:
            checkpoint = record
    if checkpoint is not None:
        restore_metadata(db, checkpoint.payload["metadata"])
    if faults is not None:
        faults.stage("recovery:after_restore")

    # A structure counts as done only if a checkpoint *follows* its
    # structure_done record.  The crash can land between the two
    # appends, and then the restored metadata predates the structure's
    # rebuild — skipping it would leave the catalog pointing at stale,
    # partially freed pages.  Re-running the stage is idempotent.
    done: Set[str] = {
        r.payload["structure"]
        for r in log.records("structure_done")
        if r.payload["begin_lsn"] == begin_lsn
        and checkpoint is not None
        and r.lsn < checkpoint.lsn
    }
    materialized = {
        r.payload["name"]: r.payload
        for r in log.records("materialized")
        if r.payload["begin_lsn"] == begin_lsn
        and checkpoint is not None
        and r.lsn < checkpoint.lsn
    }
    if "keys" not in materialized:
        # The crash hit before anything was modified: abandon the run.
        log.append("bulk_end", begin_lsn=begin_lsn, abandoned=True)
        report.abandoned = True
        return report

    runner = RecoverableBulkDelete(
        db, table_name, open_rec.payload["column"], [], log, faults=faults
    )

    def load(name: str) -> List[Tuple[int, ...]]:
        payload = {
            r.payload["name"]: r.payload
            for r in log.records("materialized")
            if r.payload["begin_lsn"] == begin_lsn
        }[name]
        return list(
            SpillFile.from_pages(
                db.disk, payload["width"], payload["page_ids"], payload["count"]
            )
        )

    logged_by_structure: Dict[str, List[Tuple[int, ...]]] = {}
    for record in log.records_after(begin_lsn):
        if record.kind in ("leaf_deletes", "heap_deletes"):
            logged_by_structure.setdefault(
                record.payload["structure"], []
            ).extend(tuple(e) for e in record.payload["entries"])

    driving_name = stages[0]["name"]
    rid_list: Optional[List[int]] = None

    # --- driving index ---------------------------------------------------
    if driving_name in done:
        report.skipped_structures.append(driving_name)
        rid_list = [r for (r,) in load("rids")]
    else:
        sorted_keys = [k for (k,) in load("keys")]
        tree = table.index(driving_name).tree
        bd = bd_index_sort_merge(
            tree,
            [(k, 0) for k in sorted_keys],
            db.disk,
            match_rid=False,
            on_removed=runner._redo_logger(driving_name),
        )
        union: Set[Entry] = set(
            (k, r) for k, r in logged_by_structure.get(driving_name, [])
        )
        fresh_count = len(bd.deleted)
        union.update(bd.deleted)
        # Entries deleted+flushed before the crash are in the log but
        # not re-deleted now; fix the in-memory count accordingly.
        tree._entry_count -= len(union) - fresh_count
        rid_list = sorted(r for _, r in union)
        runner._materialize("rids", 1, [(r,) for r in rid_list], begin_lsn)
        runner._checkpoint(begin_lsn, driving_name)
        report.redone_structures.append(driving_name)

    # --- base table --------------------------------------------------------
    indexes = [table.index(name) for name in index_order]
    if "__table__" in done:
        report.skipped_structures.append("__table__")
        report.records_deleted = materialized.get("rids", {}).get("count", 0)
    else:
        logged_rows = {
            row[0]: row
            for row in logged_by_structure.get("__table__", [])
        }
        # Every victim still present on disk is (re-)deleted — rows whose
        # deletion was flushed before the crash are covered by the logged
        # redo records instead.  Redo is idempotent either way.
        to_delete = [
            RID.unpack(r) for r in rid_list if table.heap.exists(RID.unpack(r))
        ]
        collected: List[Tuple[int, ...]] = list(logged_rows.values())

        def log_page(batch: List[Tuple[RID, bytes]]) -> None:
            entries = []
            for rid, payload in batch:
                values = table.serializer.unpack(payload)
                keys = [ix.key_for(values, table.schema) for ix in indexes]
                entries.append((rid.pack(), *keys))
            log.append("heap_deletes", structure="__table__", entries=entries)
            collected.extend(entries)
            if faults is not None:
                faults.redo_record("__table__")

        pre_count = table.heap.record_count
        table.heap.delete_many_sorted(to_delete, on_page_deletes=log_page)
        # Dedupe (a row may be both logged and re-deleted just now).
        unique_rows = {row[0]: row for row in collected}
        # Deletions flushed before the crash are not in to_delete; the
        # restored record count must still account for them.
        table.heap._record_count = pre_count - len(unique_rows)
        report.records_deleted = len(unique_rows)
        for pos, ix in enumerate(indexes):
            pairs = sorted(
                (row[1 + pos], row[0]) for row in unique_rows.values()
            )
            runner._materialize(f"pairs:{ix.name}", 2, pairs, begin_lsn)
        runner._checkpoint(begin_lsn, "__table__")
        report.redone_structures.append("__table__")
        materialized = {
            r.payload["name"]: r.payload
            for r in log.records("materialized")
            if r.payload["begin_lsn"] == begin_lsn
        }

    # --- remaining indexes --------------------------------------------------
    materialized = {
        r.payload["name"]: r.payload
        for r in log.records("materialized")
        if r.payload["begin_lsn"] == begin_lsn
        and checkpoint is not None
        and r.lsn < checkpoint.lsn
    }
    for name in index_order:
        if name in done:
            report.skipped_structures.append(name)
            continue
        pairs = [(k, r) for k, r in load(f"pairs:{name}")]
        tree = table.index(name).tree
        bd = bd_index_sort_merge(
            tree,
            pairs,
            db.disk,
            match_rid=True,
            on_removed=runner._redo_logger(name),
        )
        union = set(
            (k, r) for k, r in logged_by_structure.get(name, [])
        )
        fresh_count = len(bd.deleted)
        union.update(bd.deleted)
        tree._entry_count -= len(union) - fresh_count
        runner._checkpoint(begin_lsn, name)
        report.redone_structures.append(name)

    # --- side-files after completion (§3.2) ----------------------------------
    # "The side-files are applied to the indices when the bulk deleter
    # has finished ... the changes logged in the side-files ... have to
    # be made durable after the bulk deletion changes."  Live side-file
    # objects take precedence; otherwise they are reconstructed from
    # the WAL records the (crashed) coordinator forced at append time.
    if side_files is None:
        side_files = _rebuild_side_files_from_log(log, begin_lsn)
    if faults is not None:
        faults.stage("recovery:before_side_files")
    if side_files:
        applied_already = {
            r.payload["index"]
            for r in log.records("side_file_applied")
            if r.payload.get("begin_lsn") == begin_lsn
        }
        for name, side in side_files.items():
            tree = table.index(name).tree
            if name in applied_already:
                # A previous recovery applied this side-file, logged it,
                # and crashed before ``bulk_end``.  The checkpoint we
                # restored predates the application, so the in-memory
                # entry count must be reconciled with the durable leaves.
                _reconcile_entry_count(tree)
                table.index(name).set_online()
                continue
            # Replay idempotently: a previous recovery attempt may have
            # applied part of this side-file and crashed before logging
            # ``side_file_applied``.
            applied = side.apply_batch(tree, idempotent=True)
            # Same staleness as above: any prefix that was durably
            # applied before a crash is in the leaves but not in the
            # restored checkpoint metadata.
            _reconcile_entry_count(tree)
            report.side_files_applied[name] = applied
            table.index(name).set_online()
            # Durability order per §3.2 ("the changes logged in the
            # side-files ... have to be made durable"): flush the tree
            # before the log can claim the side-file is applied, else a
            # crash after the append silently loses the updates.
            db.flush()
            if faults is not None:
                faults.stage(f"recovery:side_file:{name}")
            log.append(
                "side_file_applied", begin_lsn=begin_lsn, index=name
            )

    # The final flush mirrors the side-file rule for the stage re-runs
    # above: everything recovery rebuilt must be durable before the
    # bulk_end record closes the statement — with the log closed, a
    # later restart will not look at this statement again.
    db.flush()
    log.append("bulk_end", begin_lsn=begin_lsn)
    return report


def _reconcile_entry_count(tree) -> None:
    """Reset a tree's entry count to what its leaves actually hold.

    Checkpoints are taken per *stage*; side-files are applied after the
    last one.  Any side-file effect that became durable before a crash
    is therefore in the leaves but never in checkpoint metadata, and no
    redo arithmetic can recover the difference — recount instead.
    """
    tree._entry_count = sum(1 for _ in tree.items())


def _rebuild_side_files_from_log(
    log: WriteAheadLog, begin_lsn: int
) -> Dict[str, SideFile]:
    """Reconstruct side-files from the ``side_file_op`` records forced
    to the log after this bulk delete began."""
    from repro.txn.sidefile import SideFileOp

    rebuilt: Dict[str, SideFile] = {}
    for record in log.records_after(begin_lsn):
        if record.kind != "side_file_op":
            continue
        name = record.payload["index"]
        side = rebuilt.setdefault(name, SideFile(name))
        side.append(
            SideFileOp(record.payload["op"]),
            record.payload["key"],
            record.payload["rid"],
        )
    return rebuilt

"""Checkpointing, crash simulation, and roll-forward restart (§3.2)."""

from repro.recovery.restart import (
    RecoverableBulkDelete,
    RecoveryReport,
    SimulatedCrash,
    recover,
)
from repro.recovery.snapshot import capture_metadata, restore_metadata
from repro.recovery.wal import LogRecord, WriteAheadLog

__all__ = [
    "LogRecord",
    "RecoverableBulkDelete",
    "RecoveryReport",
    "SimulatedCrash",
    "WriteAheadLog",
    "capture_metadata",
    "recover",
    "restore_metadata",
]

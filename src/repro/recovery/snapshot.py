"""Catalog-metadata snapshots for checkpoints.

The engine keeps structural metadata (heap page lists, B-tree roots,
entry counts) in Python objects rather than in catalog pages; a real
system would persist them there.  Checkpoints therefore capture this
metadata explicitly, and restart restores it, standing in for reading
the catalog back from disk.  Only metadata whose pages were flushed at
checkpoint time is captured, so the snapshot is always consistent with
the on-disk page images.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.catalog.database import Database


def capture_metadata(db: Database) -> Dict[str, Any]:
    """Snapshot every table's and index's structural metadata."""
    snapshot: Dict[str, Any] = {"tables": {}}
    for table in db.catalog.tables():
        indexes: Dict[str, Any] = {}
        for index in table.indexes.values():
            indexes[index.name] = {
                "root_id": index.tree.root_id,
                "first_leaf_id": index.tree.first_leaf_id,
                "height": index.tree.height,
                "entry_count": index.tree.entry_count,
            }
        snapshot["tables"][table.name] = {
            "page_ids": list(table.heap.page_ids),
            "record_count": table.heap.record_count,
            "fsm": {
                page_id: table.heap.fsm.free_bytes(page_id)
                for page_id in table.heap.fsm.pages()
            },
            "indexes": indexes,
        }
    return snapshot


def restore_metadata(db: Database, snapshot: Dict[str, Any]) -> None:
    """Restore structural metadata captured by :func:`capture_metadata`."""
    for table_name, table_meta in snapshot["tables"].items():
        table = db.table(table_name)
        table.heap.page_ids = list(table_meta["page_ids"])
        table.heap._page_set = set(table_meta["page_ids"])
        table.heap._record_count = table_meta["record_count"]
        fsm = table.heap.fsm
        for page_id in list(fsm.pages()):
            fsm.forget(page_id)
        for page_id, free in table_meta["fsm"].items():
            fsm.record(page_id, free)
        for index_name, meta in table_meta["indexes"].items():
            tree = table.index(index_name).tree
            tree.root_id = meta["root_id"]
            tree.first_leaf_id = meta["first_leaf_id"]
            tree.height = meta["height"]
            tree._entry_count = meta["entry_count"]

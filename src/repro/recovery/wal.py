"""Write-ahead log for bulk deletes.

The paper's recovery story (§3.2): checkpoints flush dirty pages and
note the last processed key/RID; restart *finishes* an interrupted bulk
deletion forward instead of rolling it back, and side-files captured by
concurrent updaters are applied after the bulk delete completes.

This log keeps logical records:

* ``bulk_begin`` / ``bulk_end`` bracket one bulk delete and record its
  stage order,
* ``materialized`` registers a spill file (page ids + tuple count) so
  restart can re-open intermediate results — "the results of the join
  variants should be materialized to stable storage",
* ``leaf_deletes`` / ``heap_deletes`` are logical redo records written
  *before* the corresponding page is modified (the WAL rule): after a
  crash, every change that may have reached disk is re-derivable from
  the log,
* ``structure_done`` + ``checkpoint`` mark stage boundaries (all pages
  flushed, catalog metadata snapshot attached).

Appending is modelled as forced (synchronous) logging: once ``append``
returns, the record survives any crash.  The log file itself lives
outside the simulated disk; its (sequential, tiny) I/O is charged as a
fraction of a page write per record.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import CorruptLogError
from repro.storage.disk import SimulatedDisk

#: Payload key marking a torn (partially forced) final record.  Kept in
#: sync with :data:`repro.faults.injector.TORN_RECORD_KEY` (the WAL must
#: not import the fault package).
_TORN_KEY = "__torn__"


@dataclass(frozen=True)
class LogRecord:
    """One durable log entry."""

    lsn: int
    kind: str
    payload: Dict[str, Any]

    @property
    def torn(self) -> bool:
        """True for a partially forced record (restart truncates it)."""
        return bool(self.payload.get(_TORN_KEY))


class WriteAheadLog:
    """Append-only, force-at-append log."""

    #: Simulated cost per appended record (sequential log device).
    APPEND_COST_MS = 0.05

    def __init__(self, disk: Optional[SimulatedDisk] = None) -> None:
        self.disk = disk
        self._records: List[LogRecord] = []
        #: Fault-injection hook (:class:`repro.faults.FaultInjector`).
        #: ``None`` keeps appends on the fast path.
        self.fault_injector: Optional[Any] = None

    def append(self, kind: str, **payload: Any) -> int:
        # The payload is deep-copied: once forced, a record is immutable
        # even if the caller keeps mutating the dict it logged from
        # (redo idempotence depends on replaying what was *forced*).
        lsn = len(self._records) + 1
        record = LogRecord(lsn, kind, copy.deepcopy(payload))
        if self.disk is not None:
            self.disk.clock.advance_ms(self.APPEND_COST_MS)
        injector = self.fault_injector
        if injector is None:
            self._records.append(record)
        else:
            injector.on_wal_append(record, self._records.append)
        return lsn

    def records(self, kind: Optional[str] = None) -> Iterator[LogRecord]:
        for record in self._records:
            if kind is None or record.kind == kind:
                yield record

    def records_after(self, lsn: int) -> Iterator[LogRecord]:
        for record in self._records:
            if record.lsn > lsn:
                yield record

    def last(self, kind: str) -> Optional[LogRecord]:
        for record in reversed(self._records):
            if record.kind == kind:
                return record
        return None

    def __len__(self) -> int:
        return len(self._records)

    def tail(self, n: int = 10) -> List[LogRecord]:
        if n <= 0:
            return []
        return self._records[-n:]

    def truncate_torn_tail(self) -> Optional[LogRecord]:
        """Drop a torn final record, returning it (or ``None``).

        Models restart's checksum scan: a record whose force was
        interrupted mid-write fails its checksum and the log is
        truncated at the last intact record.  Only the *final* record
        can legitimately be torn — an earlier torn record means the
        device reordered forced writes, which the simulation never does.
        """
        if self._records and self._records[-1].torn:
            return self._records.pop()
        return None

    def find_open_bulk_delete(self) -> Optional[LogRecord]:
        """The last ``bulk_begin`` without a matching ``bulk_end``.

        Anomalies in the log *body* are real corruption and raise.  An
        anomalous **final** record is tolerated: a crash can strike
        after the force completed but before the writer's in-memory
        state caught up, so the tail may carry a record the writer never
        acted on (e.g. a ``bulk_end`` that does not match the open
        statement).  A well-formed truncated log must never fail here.
        """
        open_record: Optional[LogRecord] = None
        last_index = len(self._records) - 1
        for index, record in enumerate(self._records):
            if record.torn:
                if index == last_index:
                    # An un-truncated torn tail; ignore it (callers that
                    # want it gone run truncate_torn_tail first).
                    continue
                raise CorruptLogError("torn record inside the log body")
            if record.kind == "bulk_begin":
                open_record = record
            elif record.kind == "bulk_end":
                if open_record is None:
                    if index == last_index:
                        continue
                    raise CorruptLogError("bulk_end without bulk_begin")
                if record.payload.get("begin_lsn") != open_record.lsn:
                    if index == last_index:
                        # Orphaned tail record; the open statement is
                        # still the unit of recovery.
                        continue
                    raise CorruptLogError("interleaved bulk deletes in log")
                open_record = None
        return open_record

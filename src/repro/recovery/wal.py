"""Write-ahead log for bulk deletes.

The paper's recovery story (§3.2): checkpoints flush dirty pages and
note the last processed key/RID; restart *finishes* an interrupted bulk
deletion forward instead of rolling it back, and side-files captured by
concurrent updaters are applied after the bulk delete completes.

This log keeps logical records:

* ``bulk_begin`` / ``bulk_end`` bracket one bulk delete and record its
  stage order,
* ``materialized`` registers a spill file (page ids + tuple count) so
  restart can re-open intermediate results — "the results of the join
  variants should be materialized to stable storage",
* ``leaf_deletes`` / ``heap_deletes`` are logical redo records written
  *before* the corresponding page is modified (the WAL rule): after a
  crash, every change that may have reached disk is re-derivable from
  the log,
* ``structure_done`` + ``checkpoint`` mark stage boundaries (all pages
  flushed, catalog metadata snapshot attached).

Appending is modelled as forced (synchronous) logging: once ``append``
returns, the record survives any crash.  The log file itself lives
outside the simulated disk; its (sequential, tiny) I/O is charged as a
fraction of a page write per record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import RecoveryError
from repro.storage.disk import SimulatedDisk


@dataclass(frozen=True)
class LogRecord:
    """One durable log entry."""

    lsn: int
    kind: str
    payload: Dict[str, Any]


class WriteAheadLog:
    """Append-only, force-at-append log."""

    #: Simulated cost per appended record (sequential log device).
    APPEND_COST_MS = 0.05

    def __init__(self, disk: Optional[SimulatedDisk] = None) -> None:
        self.disk = disk
        self._records: List[LogRecord] = []

    def append(self, kind: str, **payload: Any) -> int:
        lsn = len(self._records) + 1
        self._records.append(LogRecord(lsn, kind, payload))
        if self.disk is not None:
            self.disk.clock.advance_ms(self.APPEND_COST_MS)
        return lsn

    def records(self, kind: Optional[str] = None) -> Iterator[LogRecord]:
        for record in self._records:
            if kind is None or record.kind == kind:
                yield record

    def records_after(self, lsn: int) -> Iterator[LogRecord]:
        for record in self._records:
            if record.lsn > lsn:
                yield record

    def last(self, kind: str) -> Optional[LogRecord]:
        for record in reversed(self._records):
            if record.kind == kind:
                return record
        return None

    def __len__(self) -> int:
        return len(self._records)

    def tail(self, n: int = 10) -> List[LogRecord]:
        return self._records[-n:]

    def find_open_bulk_delete(self) -> Optional[LogRecord]:
        """The last ``bulk_begin`` without a matching ``bulk_end``."""
        open_record: Optional[LogRecord] = None
        for record in self._records:
            if record.kind == "bulk_begin":
                open_record = record
            elif record.kind == "bulk_end":
                if open_record is None:
                    raise RecoveryError("bulk_end without bulk_begin")
                if record.payload.get("begin_lsn") != open_record.lsn:
                    raise RecoveryError("interleaved bulk deletes in log")
                open_record = None
        return open_record

#!/usr/bin/env python3
"""Concurrent bulk delete: the Section 3 protocol, step by step.

Shows the coordinator phasing a bulk delete so that other transactions
regain access as early as possible:

* during the *critical phase* the table is X-locked and every index is
  off-line — a concurrent insert is refused,
* at the *commit point* the table and the unique indexes come back;
  updates flow again, with changes to the still-off-line secondary
  index captured in a side-file,
* the secondary index is processed last and the side-file is drained
  into it before it comes back on-line.

Run:  python examples/online_bulk_delete.py
"""

import random

from repro import Attribute, Database, TableSchema
from repro.errors import LockConflictError, UniqueViolationError
from repro.txn.coordinator import (
    BulkDeleteCoordinator,
    PropagationMode,
    UpdateRouter,
)
from repro.txn.locks import LockMode


def main() -> None:
    db = Database(page_size=4096, memory_bytes=128 * 1024)
    schema = TableSchema.of(
        "accounts",
        [
            Attribute.int_("account_id"),
            Attribute.int_("branch_id"),
            Attribute.char("owner", 60),
        ],
    )
    db.create_table(schema)
    rng = random.Random(5)
    account_ids = rng.sample(range(1_000_000), 2000)
    branch_ids = rng.sample(range(1_000_000), 2000)
    db.load_table(
        "accounts",
        [(a, b, "holder") for a, b in zip(account_ids, branch_ids)],
    )
    db.create_index("accounts", "account_id", unique=True)
    db.create_index("accounts", "branch_id")

    closed = rng.sample(account_ids, 400)
    coordinator = BulkDeleteCoordinator(
        db, "accounts", "account_id", closed,
        mode=PropagationMode.SIDE_FILE,
    )
    router = UpdateRouter(db, coordinator)

    # --- critical phase --------------------------------------------------
    coordinator.begin()
    print("critical phase: table X-locked, all indexes off-line")
    writer = coordinator.tm.begin()
    try:
        coordinator.tm.locks.lock_row(
            writer.txn_id, "accounts", "probe", LockMode.X
        )
    except LockConflictError as exc:
        print(f"  concurrent writer blocked: {exc}")
    coordinator.process_critical_phase()
    coordinator.commit_critical()
    print("commit point: table released, unique index back on-line; "
          f"pending off-line indexes: {coordinator.pending_indexes()}")

    # --- concurrency while the secondary index is processed ---------------
    new_account, new_branch = 999_999_001, 999_999_002
    rid = router.insert(writer, "accounts", (new_account, new_branch, "new"))
    print(f"  concurrent insert accepted at RID {rid}; branch index "
          f"change captured in a side-file "
          f"({coordinator.side_files['I_accounts_branch_id'].pending} "
          "entries pending)")
    surviving_id = next(a for a in account_ids if a not in set(closed))
    try:
        router.insert(writer, "accounts", (surviving_id, 1, "dup"))
    except UniqueViolationError:
        print("  duplicate account id correctly refused — the unique "
              "index is on-line again, exactly why it was processed first")
    coordinator.tm.commit(writer)

    for index_name in coordinator.pending_indexes():
        bd = coordinator.process_index(index_name)
        applied = coordinator.report.side_file_applied[index_name]
        print(f"processed {index_name}: -{bd.deleted_count} entries, "
              f"side-file replayed {applied} update(s); index on-line")

    table = db.table("accounts")
    assert table.record_count == 2000 - 400 + 1
    assert table.index("I_accounts_branch_id").tree.contains(new_branch)
    for ix in table.indexes.values():
        assert ix.is_online
        assert ix.tree.entry_count == table.record_count
    print(f"\ndone: {coordinator.report.records_deleted} accounts purged, "
          f"{table.record_count} remain, all indexes consistent")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Archiving: the paper's motivating application, end to end in SQL.

"Archiving is a two step process.  In the first step, the data to be
archived are extracted from the database ... In the second step, the
extracted data are deleted from the database."  (Paper, §1 — the SAP
Terabyte-project scenario.)

This example drives the whole pipeline through the SQL front-end:

1. load an ``orders`` table with three indexes (order id, customer,
   ship date — the paper's point that partitioning cannot help when
   deletes follow more than one dimension),
2. extract old, fully processed orders into an archive table (the
   "find all orders processed more than three months ago" query),
3. bulk-delete the archived orders with the paper's statement shape
   ``DELETE FROM orders WHERE id IN (SELECT id FROM archive)``,
4. show the plan EXPLAIN and the simulated cost.

Run:  python examples/archiving_pipeline.py
"""

import random

from repro import Database
from repro.sql.interpreter import SqlSession

TODAY = 20260705  # dates are YYYYMMDD integers
CUTOFF = 20260401  # archive everything shipped before April


def main() -> None:
    db = Database(page_size=4096, memory_bytes=256 * 1024)
    sql = SqlSession(db, force_vertical=True)

    sql.execute(
        "CREATE TABLE orders ("
        "  order_id INT, customer_id INT, ship_date INT,"
        "  status INT, payload CHAR(120)"
        ")"
    )
    sql.execute("CREATE TABLE archive ("
                "  order_id INT, customer_id INT, ship_date INT,"
                "  status INT, payload CHAR(120)"
                ")")

    rng = random.Random(42)
    order_ids = rng.sample(range(10_000_000), 4000)
    rows = []
    for order_id in order_ids:
        ship_date = rng.randrange(20251001, TODAY)
        status = rng.choice((0, 1, 1, 1))  # 1 = fully processed
        rows.append(
            f"({order_id}, {rng.randrange(10_000)}, {ship_date}, "
            f"{status}, 'order-payload')"
        )
    for start in range(0, len(rows), 500):
        sql.execute(
            "INSERT INTO orders VALUES " + ", ".join(rows[start:start + 500])
        )
    sql.execute("CREATE UNIQUE INDEX io ON orders (order_id)")
    sql.execute("CREATE INDEX ic ON orders (customer_id)")
    sql.execute("CREATE INDEX id2 ON orders (ship_date)")
    db.flush()
    db.clock.reset()

    # --- step 1: extract ------------------------------------------------
    old = sql.execute(
        f"SELECT * FROM orders WHERE ship_date < {CUTOFF}"
    ).rows
    # "delete old orders, but only if they have been fully processed"
    archivable = [row for row in old if row[3] == 1]
    print(f"extracting {len(archivable)} of {len(old)} old orders "
          f"(only fully processed ones)")
    for start in range(0, len(archivable), 500):
        chunk = archivable[start:start + 500]
        values = ", ".join(
            f"({r[0]}, {r[1]}, {r[2]}, {r[3]}, '{r[4]}')" for r in chunk
        )
        sql.execute("INSERT INTO archive VALUES " + values)
    extract_s = db.clock.now_seconds
    print(f"  extract phase: {extract_s:.2f}s simulated")

    # --- step 2: bulk delete ---------------------------------------------
    explain = sql.execute(
        "EXPLAIN DELETE FROM orders WHERE order_id IN "
        "(SELECT order_id FROM archive)"
    )
    print("\nplan for the delete phase:")
    print(explain.text)

    result = sql.execute(
        "DELETE FROM orders WHERE order_id IN "
        "(SELECT order_id FROM archive)"
    )
    delete_s = db.clock.now_seconds - extract_s
    print(f"\ndeleted {result.affected} orders in {delete_s:.2f}s simulated")
    print(result.detail.summary())

    remaining = sql.execute("SELECT order_id FROM orders").rows
    archived = sql.execute("SELECT order_id FROM archive").rows
    assert len(remaining) + len(archived) == 4000
    assert {r[0] for r in remaining}.isdisjoint({a[0] for a in archived})
    print(f"\n{len(remaining)} orders remain on-line, "
          f"{len(archived)} archived — no overlap, nothing lost")


if __name__ == "__main__":
    main()

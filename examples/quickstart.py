#!/usr/bin/env python3
"""Quickstart: create a table, index it, and bulk-delete the old rows.

Runs the paper's statement —

    DELETE FROM R WHERE R.A IN (SELECT D.A FROM D)

— through the vertical bulk-delete planner and compares it against the
traditional record-at-a-time execution on an identical copy of the
database.  Times are *simulated* disk time: the engine charges seeks,
rotation, and transfers against a model of the paper's 7200 rpm disk.

Run:  python examples/quickstart.py
"""

import random

from repro import (
    Attribute,
    Database,
    TableSchema,
    bulk_delete,
    choose_plan,
    traditional_delete,
)


def build_database(seed: int = 7) -> Database:
    """A small orders table with a primary and a secondary index."""
    db = Database(page_size=4096, memory_bytes=128 * 1024)
    schema = TableSchema.of(
        "orders",
        [
            Attribute.int_("order_id"),
            Attribute.int_("customer_id"),
            Attribute.char("payload", 200),
        ],
    )
    db.create_table(schema)
    rng = random.Random(seed)
    order_ids = rng.sample(range(1_000_000), 5000)
    customer_ids = rng.sample(range(1_000_000), 5000)
    db.load_table(
        "orders",
        [(o, c, "x" * 50) for o, c in zip(order_ids, customer_ids)],
    )
    db.create_index("orders", "order_id", unique=True)
    db.create_index("orders", "customer_id")
    db.flush()
    db.clock.reset()
    return db, order_ids


def main() -> None:
    db, order_ids = build_database()
    victims = random.Random(1).sample(order_ids, 750)  # 15 %

    print("The planner's choice for this DELETE:")
    plan = choose_plan(db, "orders", "order_id", len(victims))
    print(plan.explain())
    print()

    result = bulk_delete(db, "orders", "order_id", victims)
    print("Vertical bulk delete:")
    print(result.summary())
    print(f"  simulated time: {result.elapsed_seconds:.2f}s")
    print()

    # The same delete, record-at-a-time, on a fresh copy.
    db2, order_ids2 = build_database()
    trad = traditional_delete(db2, "orders", "order_id", victims)
    print("Traditional (horizontal) delete of the same rows:")
    print(
        f"  deleted {trad.records_deleted} records in "
        f"{trad.elapsed_seconds:.2f}s (simulated), "
        f"{trad.io.random_ios} random I/Os"
    )
    speedup = trad.elapsed_ms / result.elapsed_ms
    print(f"\nvertical speedup: {speedup:.1f}x")
    assert result.records_deleted == trad.records_deleted == 750


if __name__ == "__main__":
    main()

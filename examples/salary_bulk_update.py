#!/usr/bin/env python3
"""The paper's UPDATE application, plus referential integrity.

§1: "The techniques presented in this paper can also be applied to
speed up UPDATE statements; for instance, increasing the salary of
above-average Employees involves carrying out a bulk delete (and bulk
insert) on the Emp.salary index."

Part 1 runs exactly that statement — a raise for every above-average
employee — vertically (one heap sweep + one bulk delete + one bulk
insert on the salary index) and horizontally (per-record index
maintenance), and compares the simulated cost.

Part 2 deletes a department with referential integrity: the constraint
is checked set-oriented *before anything is modified* (RESTRICT), then
the delete is retried with ON DELETE CASCADE.

Run:  python examples/salary_bulk_update.py
"""

import random

from repro import (
    Attribute,
    ConstraintRegistry,
    Database,
    OnDelete,
    TableSchema,
    bulk_delete_with_integrity,
    bulk_update,
    traditional_update,
)
from repro.errors import IntegrityViolationError
from repro.sql.interpreter import SqlSession


def build():
    # A small buffer pool (~16 pages) so the table and the salary
    # index do not simply fit in memory.
    db = Database(page_size=4096, memory_bytes=64 * 1024)
    db.create_table(TableSchema.of(
        "dept", [Attribute.int_("dept_id"), Attribute.char("name", 30)]
    ))
    db.create_table(TableSchema.of(
        "emp",
        [
            Attribute.int_("emp_id"),
            Attribute.int_("dept_id"),
            Attribute.int_("salary"),
            Attribute.char("name", 60),
        ],
    ))
    rng = random.Random(12)
    db.load_table("dept", [(d, f"dept-{d}") for d in range(20)])
    emp_ids = rng.sample(range(1_000_000), 8000)
    db.load_table(
        "emp",
        [
            (e, rng.randrange(20), rng.randrange(30_000, 120_000), "emp")
            for e in emp_ids
        ],
    )
    db.create_index("dept", "dept_id", unique=True)
    db.create_index("emp", "emp_id", unique=True)
    db.create_index("emp", "dept_id")
    db.create_index("emp", "salary")
    db.flush()
    db.clock.reset()
    return db


def main() -> None:
    # --- part 1: the salary raise -----------------------------------------
    db = build()
    salaries = [v[2] for _, v in db.scan("emp")]
    average = sum(salaries) // len(salaries)
    db.clock.reset()
    print(f"average salary: {average}; raising everyone above it by 10%\n")

    result = bulk_update(
        db, "emp", "salary",
        compute=lambda row: row[2] + row[2] // 10,
        where=lambda row: row[2] > average,
    )
    print("vertical bulk update (bulk delete + bulk insert on I_salary):")
    print(result.summary())

    db2 = build()
    trad = traditional_update(
        db2, "emp", "salary",
        compute=lambda row: row[2] + row[2] // 10,
        where=lambda row: row[2] > average,
    )
    print(f"\ntraditional update: {trad.records_updated} records in "
          f"{trad.elapsed_seconds:.2f}s "
          f"({trad.io.random_ios} random I/Os)")
    print(f"vertical speedup: {trad.elapsed_ms / result.elapsed_ms:.1f}x")

    # The same statement also works through SQL:
    sql = SqlSession(db)
    r = sql.execute(
        f"UPDATE emp SET salary = salary + 1000 WHERE salary > {average}"
    )
    print(f"\nSQL 'UPDATE emp SET salary = salary + 1000 ...' "
          f"updated {r.affected} rows")

    # --- part 2: integrity-guarded department delete ----------------------
    print("\n--- deleting department 7 with referential integrity ---")
    constraints = ConstraintRegistry(db)
    fk = constraints.add_foreign_key(
        "emp", "dept_id", "dept", "dept_id", on_delete=OnDelete.RESTRICT
    )
    try:
        bulk_delete_with_integrity(db, constraints, "dept", "dept_id", [7])
    except IntegrityViolationError as exc:
        print(f"RESTRICT blocked it before any modification: {exc}")

    constraints2 = ConstraintRegistry(db)
    constraints2.add_foreign_key(
        "emp", "dept_id", "dept", "dept_id", on_delete=OnDelete.CASCADE
    )
    result, report = bulk_delete_with_integrity(
        db, constraints2, "dept", "dept_id", [7]
    )
    print(f"CASCADE: deleted department 7 and "
          f"{report.cascade_deleted} of its employees "
          f"(checked: {report.checked[0]})")
    assert all(v[1] != 7 for _, v in db.scan("emp"))
    print("no employee references department 7 anymore")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""A rolling data-warehouse window (paper §1's second application).

"Bulk deletes occur frequently in a data warehouse that keeps a window
of, say, all the sales information of the last six months."

Each month: load a month of sales, then bulk-delete the month that just
fell out of the window.  The example compares three months of window
maintenance executed (a) vertically with the bulk-delete operator and
(b) with the traditional record-at-a-time DELETE, and shows the
month-over-month simulated cost of each.

Run:  python examples/data_warehouse_window.py
"""

import random

from repro import (
    Attribute,
    Database,
    TableSchema,
    bulk_delete,
    traditional_delete,
)

WINDOW_MONTHS = 6
ROWS_PER_MONTH = 600


def build_warehouse(seed: int = 3):
    """Six months of sales with indexes on sale id, store, and month."""
    db = Database(page_size=4096, memory_bytes=128 * 1024)
    schema = TableSchema.of(
        "sales",
        [
            Attribute.int_("sale_id"),
            Attribute.int_("store_id"),
            Attribute.int_("month"),  # YYYYMM
            Attribute.char("detail", 150),
        ],
    )
    db.create_table(schema)
    rng = random.Random(seed)
    months = [202601 + m for m in range(WINDOW_MONTHS)]
    sale_ids = iter(rng.sample(range(10_000_000), ROWS_PER_MONTH * 12))
    rows = []
    by_month = {}
    for month in months:
        ids = [next(sale_ids) for _ in range(ROWS_PER_MONTH)]
        by_month[month] = ids
        rows.extend(
            (sid, rng.randrange(100), month, "sale") for sid in ids
        )
    rng.shuffle(rows)  # sales arrive interleaved, not month-clustered
    db.load_table("sales", rows)
    db.create_index("sales", "sale_id", unique=True)
    db.create_index("sales", "store_id")
    db.create_index("sales", "month")
    db.flush()
    db.clock.reset()
    return db, rng, by_month, sale_ids


def roll_window(db, rng, by_month, sale_ids, use_bulk: bool):
    """Advance the window three times; returns per-month sim seconds."""
    costs = []
    next_month = max(by_month) + 1
    for _ in range(3):
        oldest = min(by_month)
        victims = by_month.pop(oldest)
        t0 = db.clock.now_seconds
        if use_bulk:
            bulk_delete(db, "sales", "sale_id", victims)
        else:
            traditional_delete(db, "sales", "sale_id", victims)
        costs.append(db.clock.now_seconds - t0)
        # Load the new month record-at-a-time (inserts trickle in).
        ids = [next(sale_ids) for _ in range(ROWS_PER_MONTH)]
        by_month[next_month] = ids
        for sid in ids:
            db.insert("sales", (sid, rng.randrange(100), next_month, "sale"))
        next_month += 1
    return costs


def main() -> None:
    print(f"warehouse window: {WINDOW_MONTHS} months x "
          f"{ROWS_PER_MONTH} sales, 3 indexes\n")
    db, rng, by_month, ids = build_warehouse()
    bulk_costs = roll_window(db, rng, by_month, ids, use_bulk=True)
    db2, rng2, by_month2, ids2 = build_warehouse()
    trad_costs = roll_window(db2, rng2, by_month2, ids2, use_bulk=False)

    print("month-end window maintenance, simulated seconds per month:")
    print(f"  {'month':>8} {'bulk':>8} {'traditional':>12} {'speedup':>8}")
    for i, (b, t) in enumerate(zip(bulk_costs, trad_costs), start=1):
        print(f"  {i:>8} {b:>8.2f} {t:>12.2f} {t / b:>7.1f}x")

    assert db.table("sales").record_count == WINDOW_MONTHS * ROWS_PER_MONTH
    assert db2.table("sales").record_count == WINDOW_MONTHS * ROWS_PER_MONTH
    print("\nwindow size stable across both strategies "
          f"({WINDOW_MONTHS * ROWS_PER_MONTH} rows)")

    # If the data had been range-partitioned by month, the delete would
    # be a partition drop — but the paper's point is that deletes along
    # *other* dimensions (here: per-store corrections) cannot use it:
    store_victims = [
        sid for sid, in (
            (v[0],) for _, v in db.scan("sales") if v[1] == 13
        )
    ]
    result = bulk_delete(db, "sales", "sale_id", store_victims)
    print(f"\ncross-dimension cleanup (store 13): deleted "
          f"{result.records_deleted} sales — partitioning by month "
          "could not have helped here")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Crash in the middle of a bulk delete, then finish it forward (§3.2).

The recoverable executor checkpoints after every structure, logs a redo
record before each page modification, and materializes every
intermediate list to stable storage.  When the "system" crashes (the
buffer pool loses all unflushed pages), restart does not roll the
statement back — it *finishes* it, skipping the structures that were
already done.

Run:  python examples/crash_recovery.py
"""

import random

from repro import Attribute, Database, TableSchema
from repro.recovery.restart import (
    RecoverableBulkDelete,
    SimulatedCrash,
    recover,
)
from repro.recovery.wal import WriteAheadLog


def build():
    db = Database(page_size=4096, memory_bytes=64 * 1024)
    schema = TableSchema.of(
        "events",
        [
            Attribute.int_("event_id"),
            Attribute.int_("device_id"),
            Attribute.char("payload", 100),
        ],
    )
    db.create_table(schema)
    rng = random.Random(17)
    event_ids = rng.sample(range(1_000_000), 3000)
    device_ids = rng.sample(range(1_000_000), 3000)
    db.load_table(
        "events",
        [(e, d, "event") for e, d in zip(event_ids, device_ids)],
    )
    db.create_index("events", "event_id", unique=True)
    db.create_index("events", "device_id")
    db.flush()
    return db, event_ids


def main() -> None:
    db, event_ids = build()
    log = WriteAheadLog(db.disk)
    victims = random.Random(2).sample(event_ids, 900)

    runner = RecoverableBulkDelete(
        db, "events", "event_id", victims, log,
        # Power failure in the middle of the base-table sweep, after
        # the 5th redo record — some changes flushed, some lost.
        crash_mid_structure=("__table__", 5),
    )
    print(f"bulk-deleting {len(victims)} of 3000 events "
          "(crash armed inside the table sweep)...")
    try:
        runner.run()
    except SimulatedCrash as crash:
        print(f"*** {crash}")
        print(f"    buffer pool wiped; log holds {len(log)} records")

    print("\nrestart:")
    report = recover(db, log)
    print(f"  skipped (already durable): {report.skipped_structures}")
    print(f"  finished forward:          {report.redone_structures}")
    print(f"  records deleted in total:  {report.records_deleted}")

    table = db.table("events")
    survivors = {v[0] for _, v in db.scan("events")}
    assert survivors == set(event_ids) - set(victims)
    assert table.record_count == 3000 - 900
    for ix in table.indexes.values():
        assert ix.tree.entry_count == 2100
    assert log.find_open_bulk_delete() is None
    print("\nfinal state verified: every victim gone from the heap and "
          "both indexes, nothing else touched, log closed")


if __name__ == "__main__":
    main()

"""Extension bench: range-sharded bulk delete across dedicated lanes.

Pass criteria: on four equi-depth range shards with a 15 % delete, the
``shards`` region's speedup (serial fragment time over makespan) is
near-linear on dedicated lanes — >= 1.9x at 2 lanes, >= 3.8x at 4 —
end-to-end time never grows with more lanes, and every run's rollups
reconcile exactly (per-task lane time == fragment executor time to the
last bit, fragment row counts sum to the statement total, region lane
accounting internally consistent).
"""

from benchmarks.conftest import emit_report
from repro.bench.experiments import fig_shard_scaling
from repro.bench.plots import render_series
from repro.bench.report import format_table


def test_fig_shard_scaling(benchmark, records):
    series = benchmark.pedantic(
        fig_shard_scaling,
        kwargs={"record_count": records},
        rounds=1,
        iterations=1,
    )
    rows = series.rows["sharded"]
    by_lanes = dict(zip(series.x_values, rows))

    report = render_series(series)
    report += "\n" + format_table(
        "Shard region speedup (serial fragment time / makespan) and "
        "end-to-end simulated minutes",
        "lanes",
        series.x_values,
        {
            "region speedup": [r.extra["region_speedup"] for r in rows],
            "fragments": [r.extra["fragments"] for r in rows],
            "end-to-end": [r.scaled_minutes for r in rows],
        },
    )
    emit_report("fig_shard_scaling", report)

    # Every run reconciled (the experiment raises otherwise, but the
    # count is part of the published row — pin it).
    for r in rows:
        assert r.extra["reconcile_problems"] == 0.0  # lint: allow(float-cost-eq)
        assert r.extra["fragments"] == 4.0  # lint: allow(float-cost-eq)

    # All three lane counts delete the same rows.
    assert len({r.records_deleted for r in rows}) == 1

    # Dedicated lanes over four near-equal shard fragments: the region
    # speeds up near-linearly and end-to-end time never gets worse.
    assert by_lanes[1].extra["region_speedup"] == 1.0  # lint: allow(float-cost-eq)
    assert by_lanes[2].extra["region_speedup"] >= 1.9
    assert by_lanes[4].extra["region_speedup"] >= 3.8
    assert by_lanes[2].sim_seconds <= by_lanes[1].sim_seconds
    assert by_lanes[4].sim_seconds <= by_lanes[2].sim_seconds

"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper — these isolate the effect of the individual
mechanisms the paper discusses qualitatively:

* bd method: sort/merge vs hash probe vs range-partitioned hash
  (the paper: "the tradeoffs ... are the same as for regular joins"),
* leaf compaction during the sweep (§2.3) on/off,
* on-the-fly base-node reorganization ([26]) vs layer-by-layer rebuild,
* free-at-empty vs merge-at-half ([9] vs [8]).
"""

import pytest

from benchmarks.conftest import emit_report
from repro.bench.harness import Series, run_approach
from repro.bench.report import format_table, operator_breakdown
from repro.btree.maintenance import merge_underfull_leaves, validate_tree
from repro.core.executor import BulkDeleteOptions
from repro.workload.generator import WorkloadConfig, build_workload


def _config(records):
    return WorkloadConfig(record_count=records, index_columns=("A", "B"))


def test_ablation_bd_methods(benchmark, records):
    """Sort/merge vs hash vs partitioned hash at 15 % deletes."""

    def run():
        rows = {}
        for approach in ("bulk", "bulk-hash", "bulk-partitioned"):
            rows[approach] = run_approach(
                approach, _config(records), 0.15, observe=True
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    minutes = {k: [v.scaled_minutes] for k, v in rows.items()}
    breakdown_series = Series(
        title="", x_label="point", x_values=["15%"],
        rows={k: [v] for k, v in rows.items()},
    )
    emit_report(
        "ablation_methods",
        format_table("Ablation: bd method (15% deletes, 2 indexes)",
                     "point", ["15%"], minutes)
        + "\n\n" + operator_breakdown(breakdown_series),
    )
    values = [v.scaled_minutes for v in rows.values()]
    # All vertical methods sit within a small band of each other — the
    # paper's claim that method choice matters far less than
    # vertical-vs-horizontal.
    assert max(values) < min(values) * 2.5
    assert len({v.records_deleted for v in rows.values()}) == 1


def test_ablation_leaf_compaction(benchmark, records):
    """§2.3: compacting leaves during the sweep costs little and frees
    pages; skipping it leaves the tree sparse."""

    def run():
        plain = run_approach("bulk", _config(records), 0.5)
        compact = run_approach(
            "bulk", _config(records), 0.5,
            options=BulkDeleteOptions(compact_leaves=True),
        )
        return plain, compact

    plain, compact = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(
        "ablation_compaction",
        format_table(
            "Ablation: leaf compaction during the sweep (50% deletes)",
            "variant", ["minutes"],
            {"no compaction": [plain.scaled_minutes],
             "compaction": [compact.scaled_minutes]},
        ),
    )
    # Compaction costs well under the paper's "very little extra cost".
    assert compact.sim_seconds < plain.sim_seconds * 1.6


def test_ablation_base_node_reorg(benchmark, records):
    """On-the-fly inner maintenance vs layer-by-layer rebuild."""

    def run():
        rebuild = run_approach("bulk", _config(records), 0.15)
        base = run_approach(
            "bulk", _config(records), 0.15,
            options=BulkDeleteOptions(base_node_reorg=True),
        )
        return rebuild, base

    rebuild, base = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(
        "ablation_base_node",
        format_table(
            "Ablation: inner-level maintenance (15% deletes)",
            "variant", ["minutes"],
            {"layer rebuild": [rebuild.scaled_minutes],
             "base-node on-the-fly": [base.scaled_minutes]},
        ),
    )
    assert rebuild.records_deleted == base.records_deleted
    assert base.sim_seconds < rebuild.sim_seconds * 1.5


def test_ablation_free_at_empty_vs_merge(benchmark, records):
    """[9]'s free-at-empty vs a merge-at-half pass after the delete."""

    def run():
        wl = build_workload(_config(records))
        keys = wl.delete_keys(0.5)
        free_run = run_approach("bulk", _config(records), 0.5, workload=wl)
        tree = wl.db.table("R").index("I_R_A").tree
        leaves_free_at_empty = tree.leaf_count()
        t0 = wl.db.clock.now_ms
        merged = merge_underfull_leaves(tree)
        merge_ms = wl.db.clock.now_ms - t0
        validate_tree(tree)
        return free_run, leaves_free_at_empty, tree.leaf_count(), merge_ms

    free_run, before, after, merge_ms = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    emit_report(
        "ablation_reclaim_policy",
        format_table(
            "Ablation: free-at-empty vs merge-at-half (50% deletes)",
            "metric", ["value"],
            {"leaves after free-at-empty": [float(before)],
             "leaves after merge pass": [float(after)],
             "merge pass cost (sim s)": [merge_ms / 1000.0]},
        ),
    )
    # Merging halves the sparse leaf level — the benefit [8] weighs
    # against its cost.
    assert after < before


def test_ablation_hash_index_drag(benchmark, records):
    """§5: "other kinds of indices are updated in the traditional way."

    A hash index on B cannot be swept; the vertical plan must fall back
    to per-record maintenance for it, dragging the total back toward
    horizontal cost.  Swapping it for a B-tree restores the flat cost.
    """
    from repro.bench.harness import run_approach
    from repro.core.executor import bulk_delete as _unused  # noqa: F401
    from repro.workload.generator import build_workload

    def run():
        results = {}
        # B-tree secondary index: fully vertical.
        results["btree secondary"] = run_approach(
            "bulk", _config(records), 0.15
        ).scaled_minutes
        # Hash secondary index: same data, traditional-way maintenance.
        wl = build_workload(
            WorkloadConfig(record_count=records, index_columns=("A",))
        )
        wl.db.create_hash_index("R", "B", name="H_B")
        keys = wl.delete_keys(0.15)
        wl.reset_measurements()
        from repro.core.executor import bulk_delete

        bulk_delete(wl.db, "R", "A", keys, force_vertical=True)
        results["hash secondary"] = (
            wl.db.clock.now_seconds / 60.0 * wl.config.scale_factor
        )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(
        "ablation_hash_index",
        format_table(
            "Ablation: secondary index kind under a 15% bulk delete",
            "variant", ["minutes"],
            {k: [v] for k, v in results.items()},
        ),
    )
    # At tiny scales the whole hash directory fits in the buffer pool
    # and the drag disappears — a scale artifact, not a property.
    if records >= 4000:
        assert results["hash secondary"] > results["btree secondary"] * 1.5

"""Figure 1: the motivating experiment from the paper's introduction.

A 3-index table; the traditional record-at-a-time DELETE against the
``drop & create`` workaround, varying the deleted fraction (1-15 %).
Pass criterion: traditional grows sharply with the fraction, and
drop & create overtakes it once more than a few percent are deleted.
"""

from benchmarks.conftest import emit_report
from repro.bench.experiments import figure_1
from repro.bench.paper_data import FIG1_MINUTES, FIG1_PERCENTS
from repro.bench.plots import render_series
from repro.bench.report import (
    operator_breakdown,
    paper_vs_measured,
    shape_checks,
)


def test_figure_1(benchmark, records):
    series = benchmark.pedantic(
        figure_1, kwargs={"record_count": records}, rounds=1, iterations=1
    )
    report = paper_vs_measured(
        series,
        {"traditional": FIG1_MINUTES["traditional"],
         "drop&create": FIG1_MINUTES["drop&create"]},
        label_map={"not sorted/trad": "traditional"},
    )
    report += "\n\n" + render_series(series)
    report += "\n" + "\n".join(shape_checks(series))
    report += "\n\n" + operator_breakdown(series)
    emit_report("figure_1", report)

    trad = series.scaled_minutes("not sorted/trad")
    dc = series.scaled_minutes("drop&create")
    # Traditional explodes with the deleted fraction...
    assert trad[-1] > trad[0] * 5
    # ...while drop & create grows far more slowly...
    assert dc[-1] / dc[0] < trad[-1] / trad[0]
    # ...and wins at the high end (the paper's >5 % observation).
    assert dc[-1] < trad[-1]

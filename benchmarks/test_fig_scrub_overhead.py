"""Extension bench: the media layer's price tags.

Two claims, both against the simulated clock:

* a full scrub pass (checksum sweep of every durable page + heap/index
  cross-reconciliation) costs a fraction of the bulk delete it guards,
  and its cost grows with the table while the *relative* overhead stays
  in the same band — scrubbing is affordable at any size, and
* retrying a transient-faulted read under the default
  :class:`repro.media.MediaPolicy` adds a bounded, exponentially
  growing tail (the backoffs) on top of the extra read attempts —
  and nothing at all when the first attempt succeeds.
"""

import pytest

from benchmarks.conftest import emit_report
from repro.bench.experiments import fig_scrub_overhead, media_retry_latency
from repro.bench.plots import render_series
from repro.bench.report import format_table


def test_fig_scrub_overhead(benchmark, records):
    series = benchmark.pedantic(
        fig_scrub_overhead,
        kwargs={"record_count": records},
        rounds=1,
        iterations=1,
    )
    deletes = series.rows["bulk delete"]
    scrubs = series.rows["scrub pass"]

    report = render_series(series)
    report += "\n" + format_table(
        "Scrub cost vs the 15% bulk delete it guards",
        "records",
        series.x_values,
        {
            "delete (scaled)": [r.scaled_minutes for r in deletes],
            "scrub (scaled)": [r.scaled_minutes for r in scrubs],
            "overhead %": [r.extra["overhead_pct"] for r in scrubs],
            "pages checked": [r.extra["pages_checked"] for r in scrubs],
        },
    )

    tails = {k: media_retry_latency(k) for k in (1, 2, 3, 4)}
    report += "\n" + format_table(
        "Transient-read retry tail (default policy: 4 attempts, "
        "1 ms backoff doubling)",
        "recovers on attempt",
        list(tails),
        {
            "clean read ms": [t["clean_ms"] for t in tails.values()],
            "faulted read ms": [t["faulted_ms"] for t in tails.values()],
            "backoff ms": [t["backoff_ms"] for t in tails.values()],
            "retries": [t["retries"] for t in tails.values()],
        },
        unit="ms",
    )
    emit_report("fig_scrub_overhead", report)

    # Scrub cost grows with the table (more pages to sweep) ...
    assert scrubs[-1].sim_seconds > scrubs[0].sim_seconds
    # ... but stays well below the statement it guards, at every size.
    for delete, scrub in zip(deletes, scrubs):
        assert scrub.sim_seconds < delete.sim_seconds
        assert scrub.io.writes == 0  # a clean scrub only reads
        assert scrub.io.sequential_reads + scrub.io.near_sequential_reads \
            > scrub.io.random_reads  # the sweep is mostly sequential

    # Retry tail: no fault, no cost; each later recovery point adds its
    # extra attempt plus an exponentially growing backoff.
    assert tails[1]["faulted_ms"] == pytest.approx(tails[1]["clean_ms"])
    assert tails[1]["retries"] == 0
    for k in (2, 3, 4):
        assert tails[k]["faulted_ms"] > tails[k - 1]["faulted_ms"]
    assert tails[2]["backoff_ms"] == pytest.approx(1.0)
    assert tails[3]["backoff_ms"] == pytest.approx(3.0)  # 1 + 2
    assert tails[4]["backoff_ms"] == pytest.approx(7.0)  # 1 + 2 + 4

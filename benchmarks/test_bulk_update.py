"""Extension bench: the paper's §1 UPDATE application.

"Increasing the salary of above-average employees involves carrying out
a bulk delete (and bulk insert) on the Emp.salary index."  Vertical
(one heap sweep + bulk delete + bulk insert per affected index) vs the
traditional per-record index maintenance, over a sweep of updated
fractions.
"""

from benchmarks.conftest import emit_report
from repro.bench.report import format_table
from repro.core.bulk_update import bulk_update, traditional_update
from repro.workload.generator import WorkloadConfig, build_workload


def _run(records):
    fractions = [0.05, 0.15, 0.30]
    rows = {"bulk update": [], "traditional update": []}
    for fraction in fractions:
        for label in rows:
            wl = build_workload(
                WorkloadConfig(record_count=records,
                               index_columns=("A", "B"))
            )
            keys = wl.delete_keys(fraction)
            wl.reset_measurements()
            fn = bulk_update if label == "bulk update" else traditional_update
            result = fn(
                wl.db, "R", "B",
                compute=lambda row: row[1] + 1,
                where_column="A",
                where_keys=keys,
            )
            assert result.records_updated == len(keys)
            rows[label].append(
                wl.db.clock.now_seconds / 60.0 * wl.config.scale_factor
            )
    return fractions, rows


def test_bulk_update_extension(benchmark, records):
    fractions, rows = benchmark.pedantic(
        _run, args=(records,), rounds=1, iterations=1
    )
    emit_report(
        "extension_bulk_update",
        format_table(
            "Extension: UPDATE via bulk delete + bulk insert (index on "
            "the SET column)",
            "% updated",
            [int(f * 100) for f in fractions],
            rows,
        ),
    )
    bulk = rows["bulk update"]
    trad = rows["traditional update"]
    # Vertical wins everywhere and its advantage grows with the
    # fraction, like the DELETE experiments.
    for b, t in zip(bulk, trad):
        assert b < t
    assert trad[-1] / bulk[-1] > trad[0] / bulk[0] * 0.8
    assert trad[-1] > 3 * bulk[-1]

"""Figure 8 (Experiment 2): vary the number of indexes at 15 % deletes.

Pass criteria: the traditional variants grow with every additional
index (each deleted record pays one more root-to-leaf traversal), bulk
delete grows only marginally (one more sequential leaf sweep), and the
prototype-style ``drop & create`` (entry-at-a-time index rebuild) does
not beat the traditional plans, as in the paper's Figure 8.
"""

from benchmarks.conftest import emit_report
from repro.bench.experiments import figure_8
from repro.bench.paper_data import FIG8_MINUTES
from repro.bench.plots import render_series
from repro.bench.report import (
    operator_breakdown,
    paper_vs_measured,
    shape_checks,
)


def test_figure_8(benchmark, records):
    series = benchmark.pedantic(
        figure_8, kwargs={"record_count": records}, rounds=1, iterations=1
    )
    report = paper_vs_measured(series, FIG8_MINUTES)
    report += "\n\n" + render_series(series)
    report += "\n" + "\n".join(shape_checks(series))
    report += "\n\n" + operator_breakdown(series)
    emit_report("figure_8", report)

    sorted_t = series.scaled_minutes("sorted/trad")
    unsorted_t = series.scaled_minutes("not sorted/trad")
    bulk = series.scaled_minutes("bulk")
    dc = series.scaled_minutes("drop&create")
    # Monotone growth with the number of indexes for the baselines.
    assert sorted_t[0] < sorted_t[1] < sorted_t[2]
    assert unsorted_t[0] < unsorted_t[1] < unsorted_t[2]
    # Bulk barely moves: one extra sweep per index.
    assert bulk[2] < bulk[0] * 1.6
    # Bulk wins by a wide margin at 3 indexes.
    assert sorted_t[2] > 5 * bulk[2]
    # Prototype-style drop & create is not the answer (paper Fig. 8).
    assert dc[2] > bulk[2] * 3

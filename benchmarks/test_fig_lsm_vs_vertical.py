"""Extension bench: delete-aware LSM against the paper's vertical plan.

The comparison the 2001 paper left as future work, on one simulated
disk model.  Pass criteria: tombstone writes scale with the delete
list rather than the table (the write-only LSM delete beats the
sort/merge heap plan at the small fractions), the deferred price is
real and measurable (lookup amplification roughly doubles after a
write-only delete), FADE's delete-aware compactions buy it back
(amplification returns to near one page per probe, tombstones are
physically dropped), and every physical page write of the LSM delete
window reconciles *exactly* against the tree's own operation counters
(``LsmStats.page_writes``).
"""

from benchmarks.conftest import emit_report
from repro.bench.experiments import fig_lsm_vs_vertical
from repro.bench.plots import render_series
from repro.bench.report import format_table


def test_fig_lsm_vs_vertical(benchmark, records):
    series = benchmark.pedantic(
        fig_lsm_vs_vertical,
        kwargs={"record_count": records},
        rounds=1,
        iterations=1,
    )
    heap = dict(zip(series.x_values, series.rows["bulk (heap)"]))
    writeonly = dict(zip(series.x_values, series.rows["lsm write-only"]))
    fade = dict(zip(series.x_values, series.rows["lsm + FADE"]))

    report = render_series(series)
    report += "\n" + format_table(
        "Lookup amplification (pages per point probe, 64-key sample) "
        "and reclamation",
        "% deleted",
        series.x_values,
        {
            "amp after write-only": [
                writeonly[x].extra["lookup_pages_after"]
                for x in series.x_values
            ],
            "amp after FADE": [
                fade[x].extra["lookup_pages_after"]
                for x in series.x_values
            ],
            "tombstones dropped": [
                fade[x].extra["tombstones_dropped"]
                for x in series.x_values
            ],
            "page writes (reconciled)": [
                fade[x].extra["page_writes"] for x in series.x_values
            ],
        },
    )
    emit_report("fig_lsm_vs_vertical", report)

    for x in series.x_values:
        for row in (writeonly[x], fade[x]):
            # The experiment raises on any mismatch, but the zero is
            # part of the published row — pin it, and pin the identity
            # it certifies: disk writes == the tree's own accounting.
            assert row.extra["reconcile_problems"] == 0.0  # lint: allow(float-cost-eq)
            assert row.extra["page_writes"] == float(row.io.writes)  # lint: allow(float-cost-eq)

        # All three engines delete the same number of rows.
        assert (
            heap[x].records_deleted
            == writeonly[x].records_deleted
            == fade[x].records_deleted
        )

        # Write-only deletes defer reclamation: nothing dropped, and
        # point probes pay extra runs/pages; FADE physically drops
        # tombstones and restores probes to near one page.
        assert writeonly[x].extra["tombstones_dropped"] == 0.0  # lint: allow(float-cost-eq)
        assert writeonly[x].extra["lookup_pages_after"] > 1.0
        assert fade[x].extra["tombstones_dropped"] > 0.0
        assert (
            fade[x].extra["lookup_pages_after"]
            <= writeonly[x].extra["lookup_pages_after"]
        )
        assert fade[x].extra["lookup_pages_after"] <= 1.5

        # Reclamation is paid for up front when FADE runs inline.
        assert fade[x].sim_seconds >= writeonly[x].sim_seconds

    # Tombstone writes scale with the delete list, not the table: the
    # write-only delete beats the vertical plan while the list is small
    # (the vertical plan scans table + index regardless of fraction)
    # and its cost grows monotonically with the fraction.
    assert writeonly[5].sim_seconds < heap[5].sim_seconds
    assert writeonly[10].sim_seconds < heap[10].sim_seconds
    pairs = list(zip(series.x_values, series.x_values[1:]))
    for lo, hi in pairs:
        assert writeonly[lo].sim_seconds < writeonly[hi].sim_seconds

"""Figure 9 (Experiment 4): vary the main-memory budget at 15 % deletes.

Pass criteria: the bulk delete performs the same with tiny memory as
with five times more (its sorts fit, its scans are sequential), the
``not sorted`` baseline benefits measurably from extra caching, and the
ordering of the approaches is unchanged at every budget.
"""

from benchmarks.conftest import emit_report
from repro.bench.experiments import figure_9
from repro.bench.paper_data import FIG9_MINUTES
from repro.bench.plots import render_series
from repro.bench.report import (
    operator_breakdown,
    paper_vs_measured,
    shape_checks,
)


def test_figure_9(benchmark, records):
    series = benchmark.pedantic(
        figure_9, kwargs={"record_count": records}, rounds=1, iterations=1
    )
    report = paper_vs_measured(series, FIG9_MINUTES)
    report += "\n\n" + render_series(series)
    report += "\n" + "\n".join(shape_checks(series))
    report += "\n\n" + operator_breakdown(series)
    emit_report("figure_9", report)

    bulk = series.scaled_minutes("bulk")
    unsorted_t = series.scaled_minutes("not sorted/trad")
    sorted_t = series.scaled_minutes("sorted/trad")
    # Bulk delete: flat across the memory range (paper: within 1 min).
    assert max(bulk) < min(bulk) * 1.3
    # not sorted/trad improves with memory (paper: 185 -> 100 min).
    assert unsorted_t[-1] <= unsorted_t[0]
    # Ordering unchanged at every budget.
    for i in range(len(series.x_values)):
        assert bulk[i] < sorted_t[i] <= unsorted_t[i]

"""Figure 7 (Experiment 1): vary the deleted fraction.

One unclustered index, the paper's 5 MB memory (scaled).  Pass
criteria: both traditional variants grow ~linearly in the fraction,
``not sorted`` is the worst, and the vertical bulk delete stays nearly
flat and wins everywhere.
"""

from benchmarks.conftest import emit_report
from repro.bench.experiments import figure_7
from repro.bench.paper_data import FIG7_MINUTES
from repro.bench.plots import render_series
from repro.bench.report import (
    operator_breakdown,
    paper_vs_measured,
    shape_checks,
)


def test_figure_7(benchmark, records):
    series = benchmark.pedantic(
        figure_7, kwargs={"record_count": records}, rounds=1, iterations=1
    )
    report = paper_vs_measured(series, FIG7_MINUTES)
    report += "\n\n" + render_series(series)
    report += "\n" + "\n".join(shape_checks(series))
    report += "\n\n" + operator_breakdown(series)
    emit_report("figure_7", report)

    sorted_t = series.scaled_minutes("sorted/trad")
    unsorted_t = series.scaled_minutes("not sorted/trad")
    bulk = series.scaled_minutes("bulk")
    for i in range(len(series.x_values)):
        assert bulk[i] < sorted_t[i] < unsorted_t[i]
    # Traditional grows ~4x from 5 % to 20 %; bulk stays nearly flat.
    assert sorted_t[-1] > sorted_t[0] * 2.5
    assert unsorted_t[-1] > unsorted_t[0] * 2.5
    assert bulk[-1] < bulk[0] * 1.8
    # The gap at 20 % approaches the paper's order of magnitude.
    assert unsorted_t[-1] > 5 * bulk[-1]

"""Extension bench: OLTP interference during a 15% bulk delete.

Pass criteria: the run is deterministic under its fixed seed (the
exact during-phase percentiles reproduce bit-for-bit); the side-file
vertical plan beats the chunked ``DELETE ... LIMIT`` plan on p99 user
latency during the delete window at every session count; the stall
attribution matches the strategies' mechanisms (only the side-file
plan ever holds the table lock, the chunked plan stalls ops only on
chunk slices); and the exact reconciliation — histograms vs spans vs
``oltp.*`` metrics, no epsilon — reports zero problems everywhere.
"""

from benchmarks.conftest import emit_report
from repro.bench.experiments import fig_oltp_interference
from repro.bench.report import format_table


def test_fig_oltp_interference(benchmark, records):
    series = benchmark.pedantic(
        fig_oltp_interference,
        kwargs={"record_count": records},
        rounds=1,
        iterations=1,
    )
    sidefile = series.rows["sidefile"]
    chunked = series.rows["chunked"]

    report = format_table(
        series.title,
        "sessions",
        series.x_values,
        {
            "sidefile p99 during (ms)": [
                r.extra["p99_during_ms"] for r in sidefile
            ],
            "chunked p99 during (ms)": [
                r.extra["p99_during_ms"] for r in chunked
            ],
            "sidefile p50 during (ms)": [
                r.extra["p50_during_ms"] for r in sidefile
            ],
            "chunked p50 during (ms)": [
                r.extra["p50_during_ms"] for r in chunked
            ],
            "sidefile lock stall (ms)": [
                r.extra["stall_lock_ms"] for r in sidefile
            ],
            "sidefile lane stall (ms)": [
                r.extra["stall_lane_ms"] for r in sidefile
            ],
            "chunked lane stall (ms)": [
                r.extra["stall_lane_ms"] for r in chunked
            ],
            "delete window sidefile (ms)": [
                r.extra["delete_window_ms"] for r in sidefile
            ],
            "delete window chunked (ms)": [
                r.extra["delete_window_ms"] for r in chunked
            ],
        },
    )
    emit_report("fig_oltp_interference", report)

    for sf, ch in zip(sidefile, chunked):
        # The headline claim: short slices and a brief lock hold keep
        # the side-file plan's p99 below the chunked plan's, whose
        # long indivisible chunk slices every concurrent op queues
        # behind.
        assert sf.extra["p99_during_ms"] < ch.extra["p99_during_ms"]
        # Stall attribution matches the mechanisms: only the side-file
        # plan has a lock-holding critical phase; the chunked plan
        # stalls ops only on chunk (lane) slices.
        assert ch.extra["stall_lock_ms"] == 0
        assert sf.extra["stall_lane_ms"] > 0
        assert ch.extra["stall_lane_ms"] > 0
        # Both strategies deleted the same rows and reconciled exactly.
        assert sf.records_deleted == ch.records_deleted > 0
        assert sf.extra["reconcile_problems"] == 0
        assert ch.extra["reconcile_problems"] == 0

    # Seed-fixed determinism: an independent rerun (smaller scale to
    # keep the bench affordable) reproduces every number bit-for-bit.
    small = records // 4
    first = fig_oltp_interference(record_count=small)
    second = fig_oltp_interference(record_count=small)
    for name in ("sidefile", "chunked"):
        for a, b in zip(first.rows[name], second.rows[name]):
            # Bit-identical replay is the property under test, so
            # exact float equality is the point.
            assert a.extra == b.extra  # lint: allow(float-cost-eq)
            assert a.sim_seconds == b.sim_seconds  # lint: allow(float-cost-eq)

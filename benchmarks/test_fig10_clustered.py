"""Figure 10 (Experiment 5): a clustered driving index.

When the table is clustered on the delete column, the sorted
traditional plan touches heap pages in physical order — "the best
possible case for the traditional approaches".  Pass criteria:
``sorted/trad`` on the clustered table beats even the bulk delete
(the paper's one crossover), while the unclustered ``sorted/trad`` and
the clustered ``not sorted/trad`` remain far worse.
"""

from benchmarks.conftest import emit_report
from repro.bench.experiments import figure_10
from repro.bench.paper_data import FIG10_MINUTES
from repro.bench.plots import render_series
from repro.bench.report import (
    operator_breakdown,
    paper_vs_measured,
    shape_checks,
)


def test_figure_10(benchmark, records):
    series = benchmark.pedantic(
        figure_10, kwargs={"record_count": records}, rounds=1, iterations=1
    )
    report = paper_vs_measured(series, FIG10_MINUTES)
    report += "\n\n" + render_series(series)
    report += "\n" + "\n".join(shape_checks(series))
    report += "\n\n" + operator_breakdown(series)
    emit_report("figure_10", report)

    clustered = series.scaled_minutes("sorted/trad/clust")
    unclustered = series.scaled_minutes("sorted/trad/unclust")
    unsorted_c = series.scaled_minutes("not sorted/trad/clust")
    bulk = series.scaled_minutes("bulk")
    for i in range(len(series.x_values)):
        # The crossover: clustered sorted/trad wins even against bulk.
        assert clustered[i] < bulk[i]
        # But bulk still beats both other traditional variants...
        assert bulk[i] < unclustered[i]
        assert bulk[i] < unsorted_c[i]
    # ...and not-sorted gains little from clustering (paper: "overall
    # very poor performance because of its high cost to probe the
    # index").
    assert unsorted_c[-1] > 3 * bulk[-1]

"""Shared benchmark plumbing.

Every benchmark regenerates one table/figure of the paper: it runs the
experiment once under pytest-benchmark, prints a paper-vs-measured
table, writes the same table to ``benchmarks/_reports/``, and asserts
the *shape* claims (who wins, what grows, where the crossover sits) —
absolute numbers are simulated and scaled, shapes are the contract.

``REPRO_BENCH_RECORDS`` scales the workloads (default 8000 records,
1/125 of the paper's table; larger values sharpen the curves at the
cost of wall-clock time).
"""

import os
import pathlib

import pytest

RECORDS = int(os.environ.get("REPRO_BENCH_RECORDS", "8000"))

_REPORT_DIR = pathlib.Path(__file__).parent / "_reports"


def emit_report(name: str, text: str) -> None:
    """Print a report block and persist it for EXPERIMENTS.md."""
    banner = f"\n{'=' * 72}\n{text}\n{'=' * 72}"
    print(banner)
    _REPORT_DIR.mkdir(exist_ok=True)
    (_REPORT_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture
def records() -> int:
    return RECORDS

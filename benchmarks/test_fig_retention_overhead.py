"""Extension bench: the price of *compliant* deletion.

Deleting rows is cheap; deleting them so a forensic read of the medium
recovers nothing is not.  This benchmark prices the gap on the fixed
two-policy retention scenario ([docs/retention.md](../docs/retention.md)):
the bare FK-guarded cascade, the full journaled retention run (WAL
protocol + full-page writes + the erase pass), and the read-only
unrecoverability audit.  The premium is the cost of the compliance
guarantees — crash-resumability and verified erasure — and the audit
must stay a small, read-only fraction of the run it checks.
"""

from benchmarks.conftest import emit_report
from repro.bench.experiments import fig_retention_overhead
from repro.bench.plots import render_series
from repro.bench.report import format_table


def test_fig_retention_overhead(benchmark, records):
    series = benchmark.pedantic(
        fig_retention_overhead,
        kwargs={"record_count": records},
        rounds=1,
        iterations=1,
    )
    cascades = series.rows["cascade delete"]
    runs = series.rows["retention run"]
    audits = series.rows["audit pass"]

    report = render_series(series)
    report += "\n" + format_table(
        "Compliance premium: journaled run + erase vs the bare cascade",
        "subjects",
        series.x_values,
        {
            "cascade (s)": [r.sim_seconds for r in cascades],
            "retention (s)": [r.sim_seconds for r in runs],
            "premium %": [r.extra["premium_pct"] for r in runs],
            "pages shredded": [r.extra["pages_shredded"] for r in runs],
            "WAL redacted": [r.extra["wal_redacted"] for r in runs],
            "audit pages": [a.extra["pages_scanned"] for a in audits],
        },
        unit="s",
    )
    emit_report("fig_retention_overhead", report)

    for cascade, run, audit in zip(cascades, runs, audits):
        # Both passes agree on what compliance deletes.
        assert run.records_deleted == cascade.records_deleted
        # The guarantees are not free: journaling, full-page writes and
        # the erase pass cost real (simulated) time and extra writes.
        assert run.sim_seconds > cascade.sim_seconds
        assert run.io.writes > cascade.io.writes
        assert run.extra["pages_shredded"] > 0
        assert run.extra["wal_redacted"] > 0
        # The adversary's read is read-only and far cheaper than the
        # run it checks.
        assert audit.io.writes == 0
        assert audit.sim_seconds < run.sim_seconds
    # The audit's sweep surface grows with the population.
    assert audits[-1].extra["pages_scanned"] > audits[0].extra[
        "pages_scanned"
    ]

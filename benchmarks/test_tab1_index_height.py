"""Table 1 (Experiment 3): index height 3 vs 4.

The paper shrinks inner fan-out to grow the tree by one level.  Pass
criteria: the bulk delete's running time is (nearly) independent of the
height — it never traverses root-to-leaf per record — while the
``not sorted`` traditional baseline pays for the extra level.
"""

from benchmarks.conftest import emit_report
from repro.bench.experiments import table_1
from repro.bench.paper_data import TAB1_MINUTES
from repro.bench.plots import render_series
from repro.bench.report import (
    operator_breakdown,
    paper_vs_measured,
    shape_checks,
)


def test_table_1(benchmark, records):
    series = benchmark.pedantic(
        table_1, kwargs={"record_count": records}, rounds=1, iterations=1
    )
    report = paper_vs_measured(
        series,
        TAB1_MINUTES,
        label_map={"bulk": "sorted/bulk"},
    )
    report += "\n\n" + render_series(series)
    report += "\n" + "\n".join(shape_checks(series))
    report += "\n\n" + operator_breakdown(series)
    emit_report("table_1", report)

    bulk = series.scaled_minutes("bulk")
    unsorted_t = series.scaled_minutes("not sorted/trad")
    sorted_t = series.scaled_minutes("sorted/trad")
    # Bulk delete: height-independent (paper: 24.87 -> 26.79, +8 %).
    assert bulk[1] < bulk[0] * 1.25
    # not sorted/trad: clearly worse on the taller tree
    # (paper: 102.05 -> 136.09, +33 %).
    assert unsorted_t[1] > unsorted_t[0] * 1.1
    # Ordering holds at both heights.
    for i in (0, 1):
        assert bulk[i] < sorted_t[i] < unsorted_t[i]

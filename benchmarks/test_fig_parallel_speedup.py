"""Extension bench: multi-lane bulk delete on the four-branch workload.

Pass criteria: ``lanes=1`` is bit-identical to the plain serial bulk
run (the paper's single-disk testbed is the ``lanes=1`` special case);
on dedicated lanes the index-maintenance region speeds up near-linearly
(>= 0.8 k on k = 2, 4 lanes over four near-equal branches) and
end-to-end time never grows; shared lanes lose every sequentiality
discount and the run collapses to *worse* than serial, as the cost
model predicts.
"""

from benchmarks.conftest import emit_report
from repro.bench.experiments import fig_parallel_speedup
from repro.bench.harness import run_approach
from repro.bench.plots import render_series
from repro.bench.report import format_table
from repro.workload.generator import WorkloadConfig


REGION = "speedup[index-maintenance]"


def test_fig_parallel_speedup(benchmark, records):
    series = benchmark.pedantic(
        fig_parallel_speedup,
        kwargs={"record_count": records},
        rounds=1,
        iterations=1,
    )
    dedicated = series.rows["dedicated"]
    shared = series.rows["shared"]

    report = render_series(series)
    report += "\n" + format_table(
        "Region speedup (serial sweep time / makespan) and end-to-end "
        "simulated minutes",
        "lanes",
        series.x_values,
        {
            "dedicated region speedup": [
                r.extra.get(REGION, 1.0) for r in dedicated
            ],
            "dedicated end-to-end": [r.scaled_minutes for r in dedicated],
            "shared end-to-end": [r.scaled_minutes for r in shared],
        },
    )
    emit_report("fig_parallel_speedup", report)

    # lanes=1 takes the exact serial code path: same simulated time as
    # a plain bulk run, to the last bit, in both contention modes.
    serial = run_approach(
        "bulk",
        WorkloadConfig(
            record_count=records,
            index_columns=("A", "B", "C", "D2", "E"),
            memory_paper_mb=5.0,
        ),
        0.15,
    )
    # lanes=1 must be bit-identical to serial, so exact equality is
    # the point of the assertion.
    assert dedicated[0].sim_seconds == serial.sim_seconds  # lint: allow(float-cost-eq)
    assert shared[0].sim_seconds == serial.sim_seconds  # lint: allow(float-cost-eq)

    # Dedicated lanes: the four near-equal post-table branches speed
    # up near-linearly, and end-to-end time never gets worse.
    by_lanes = dict(zip(series.x_values, dedicated))
    for k in (2, 4):
        assert by_lanes[k].extra[REGION] >= 0.8 * k
    assert dedicated[1].sim_seconds <= dedicated[0].sim_seconds
    assert dedicated[2].sim_seconds <= dedicated[1].sim_seconds

    # Shared lanes: interleaving on one device forfeits the sequential
    # discounts and serializes the requests — worse than not
    # parallelizing at all.
    for r in shared[1:]:
        assert r.sim_seconds > serial.sim_seconds

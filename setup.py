"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` needs to build a wheel for editable installs; this
offline environment lacks the ``wheel`` backend, so ``python setup.py
develop`` (or this shim via pip's legacy path) installs the package
instead.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
